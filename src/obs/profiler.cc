#include "obs/profiler.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/export.h"

namespace rumba::obs {

namespace {

/** Indexable stage names; order must match ProfileStage. */
constexpr const char* kStageNames[] = {
    "idle",       "queue_wait", "device", "predict_check", "recover",
    "compensate", "merge",      "audit",  "verify",        "other",
};
static_assert(sizeof(kStageNames) / sizeof(kStageNames[0]) ==
                  static_cast<size_t>(ProfileStage::kStageCount),
              "stage name table out of sync with ProfileStage");

constexpr size_t kStageCount =
    static_cast<size_t>(ProfileStage::kStageCount);

/** Stage-share histograms span [0, 1]; 20 linear buckets of 0.05. */
std::vector<double>
ShareBounds()
{
    return Histogram::LinearBuckets(0.05, 0.05, 20);
}

// ---------------------------------------------------------------------------
// Thread slot registry: every thread that enters a StageScope (or
// binds a shard) registers a shared_ptr slot; the sampler walks the
// registry under a mutex. Slots outlive their threads (shared_ptr),
// so the sampler can never read freed memory; dead slots are pruned
// on the sampler's walk.
// ---------------------------------------------------------------------------

std::mutex&
SlotMutex()
{
    static std::mutex mu;
    return mu;
}

std::vector<std::shared_ptr<ThreadSlot>>&
SlotList()
{
    static std::vector<std::shared_ptr<ThreadSlot>> slots;
    return slots;
}

/** Marks the slot dead when its thread exits. */
struct SlotRegistration {
    std::shared_ptr<ThreadSlot> slot;

    SlotRegistration() : slot(std::make_shared<ThreadSlot>())
    {
        std::lock_guard<std::mutex> lock(SlotMutex());
        SlotList().push_back(slot);
    }

    ~SlotRegistration()
    {
        slot->alive.store(false, std::memory_order_relaxed);
    }
};

ThreadSlot*
LocalSlot()
{
    thread_local SlotRegistration registration;
    return registration.slot.get();
}

}  // namespace

const char*
ProfileStageName(ProfileStage stage)
{
    const size_t i = static_cast<size_t>(stage);
    return i < kStageCount ? kStageNames[i] : "unknown";
}

int64_t
ThreadCpuNowNs()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// ------------------------------------------------------- CpuProfiler

CpuProfiler::CpuProfiler(Registry* registry) : registry_(registry)
{
    for (size_t s = 0; s < kStageCount; ++s) {
        const std::string name(kStageNames[s]);
        stage_seconds_[s] =
            registry_->GetDoubleCounter("cpu_stage_seconds." + name);
        stage_share_[s] = registry_->GetHistogram(
            "profile.stage_share." + name, ShareBounds());
    }
    invocations_ = registry_->GetCounter("profile.invocations");
    speedup_gauge_ =
        registry_->GetGauge("efficiency.speedup_estimate");
    energy_gauge_ = registry_->GetGauge("efficiency.energy_ratio");
    window_gauge_ = registry_->GetGauge("efficiency.window");
}

DoubleCounter*
CpuProfiler::ShardStageCounter(int shard, ProfileStage stage)
{
    std::lock_guard<std::mutex> lock(shard_mu_);
    const size_t index = static_cast<size_t>(shard);
    while (shard_seconds_.size() <= index) {
        const std::string prefix = "cpu_stage_seconds.shard" +
                                   std::to_string(shard_seconds_.size());
        std::array<DoubleCounter*, kStageCount> row{};
        for (size_t s = 0; s < kStageCount; ++s) {
            row[s] = registry_->GetDoubleCounter(prefix + "." +
                                                 kStageNames[s]);
        }
        shard_seconds_.push_back(row);
    }
    return shard_seconds_[index][static_cast<size_t>(stage)];
}

void
CpuProfiler::AddStageCpuNs(ProfileStage stage, int shard, int64_t ns)
{
    if (ns <= 0)
        return;
    const double seconds = static_cast<double>(ns) * 1e-9;
    stage_seconds_[static_cast<size_t>(stage)]->Add(seconds);
    if (shard >= 0)
        ShardStageCounter(shard, stage)->Add(seconds);
}

void
CpuProfiler::RecordInvocation(int shard, const InvocationCpu& cpu)
{
    const std::pair<ProfileStage, int64_t> stages[] = {
        {ProfileStage::kQueueWait, cpu.queue_wait_ns},
        {ProfileStage::kDevice, cpu.device_ns},
        {ProfileStage::kPredictCheck, cpu.predict_check_ns},
        {ProfileStage::kRecover, cpu.recover_ns},
        {ProfileStage::kCompensate, cpu.compensate_ns},
        {ProfileStage::kMerge, cpu.merge_ns},
        {ProfileStage::kAudit, cpu.audit_ns},
        {ProfileStage::kVerify, cpu.verify_ns},
    };
    int64_t total_ns = 0;
    for (const auto& [stage, ns] : stages)
        total_ns += std::max<int64_t>(0, ns);
    for (const auto& [stage, ns] : stages) {
        AddStageCpuNs(stage, shard, ns);
        if (total_ns > 0 && ns > 0) {
            stage_share_[static_cast<size_t>(stage)]->Observe(
                static_cast<double>(ns) /
                static_cast<double>(total_ns));
        }
    }
    invocations_->Increment();
}

void
CpuProfiler::RecordCosts(const sim::SystemCosts& costs)
{
    sim::EfficiencyEstimate est;
    {
        std::lock_guard<std::mutex> lock(window_mu_);
        window_.Push(costs);
        est = window_.Estimate();
    }
    speedup_gauge_->Set(est.speedup);
    energy_gauge_->Set(est.energy_ratio);
    window_gauge_->Set(static_cast<double>(est.window));
}

sim::EfficiencyEstimate
CpuProfiler::Efficiency() const
{
    std::lock_guard<std::mutex> lock(window_mu_);
    return window_.Estimate();
}

double
CpuProfiler::StageSeconds(ProfileStage stage) const
{
    return stage_seconds_[static_cast<size_t>(stage)]->Value();
}

uint64_t
CpuProfiler::Invocations() const
{
    return invocations_->Value();
}

CpuProfiler&
CpuProfiler::Default()
{
    static CpuProfiler profiler(&Registry::Default());
    return profiler;
}

// --------------------------------------------------------- StageScope

StageScope::StageScope(ProfileStage stage, bool account,
                       int64_t* sink_ns, int shard)
    : stage_(stage), account_(account), sink_ns_(sink_ns),
      shard_(shard)
{
    ThreadSlot* slot = LocalSlot();
    const uint32_t depth =
        slot->depth.load(std::memory_order_relaxed);
    if (depth > 0 && depth <= ThreadSlot::kMaxDepth &&
        slot->stack[depth - 1].load(std::memory_order_relaxed) ==
            static_cast<uint8_t>(stage)) {
        pushed_ = false;  // parent frame already carries this tag.
    } else {
        if (depth < ThreadSlot::kMaxDepth) {
            slot->stack[depth].store(static_cast<uint8_t>(stage),
                                     std::memory_order_relaxed);
        }
        slot->depth.store(depth + 1, std::memory_order_relaxed);
    }
    if (account_)
        start_ns_ = ThreadCpuNowNs();
}

StageScope::~StageScope()
{
    if (account_) {
        const int64_t delta = ThreadCpuNowNs() - start_ns_;
        if (sink_ns_ != nullptr)
            *sink_ns_ += delta;
        else
            CpuProfiler::Default().AddStageCpuNs(stage_, shard_, delta);
    }
    if (pushed_) {
        ThreadSlot* slot = LocalSlot();
        const uint32_t depth =
            slot->depth.load(std::memory_order_relaxed);
        if (depth > 0)
            slot->depth.store(depth - 1, std::memory_order_relaxed);
    }
}

void
BindThreadShard(int shard)
{
    LocalSlot()->shard.store(shard, std::memory_order_relaxed);
}

// --------------------------------------------------- SamplingProfiler

SamplingProfiler::~SamplingProfiler()
{
    Stop();
}

void
SamplingProfiler::Start(double hz, const std::string& out_path)
{
    if (hz <= 0.0 || running_.load(std::memory_order_acquire))
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        hz_ = hz;
        out_path_ = out_path;
        folded_.clear();
        samples_ = 0;
    }
    stop_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { Loop(); });
}

void
SamplingProfiler::Loop()
{
    const auto period = std::chrono::nanoseconds(
        static_cast<int64_t>(1e9 / hz_));
    while (!stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(period);
        // Walk the slot registry: fold one stack per live thread,
        // prune slots whose threads exited.
        std::vector<std::shared_ptr<ThreadSlot>> slots;
        {
            std::lock_guard<std::mutex> lock(SlotMutex());
            auto& list = SlotList();
            list.erase(std::remove_if(
                           list.begin(), list.end(),
                           [](const std::shared_ptr<ThreadSlot>& s) {
                               return !s->alive.load(
                                   std::memory_order_relaxed);
                           }),
                       list.end());
            slots = list;
        }
        for (const auto& slot : slots) {
            const uint32_t depth = std::min<uint32_t>(
                slot->depth.load(std::memory_order_relaxed),
                ThreadSlot::kMaxDepth);
            const int32_t shard =
                slot->shard.load(std::memory_order_relaxed);
            std::string stack =
                shard >= 0 ? "shard" + std::to_string(shard)
                           : "thread";
            if (depth == 0) {
                stack += ";idle";
            } else {
                for (uint32_t d = 0; d < depth; ++d) {
                    const auto tag = static_cast<ProfileStage>(
                        slot->stack[d].load(
                            std::memory_order_relaxed));
                    stack += ";";
                    stack += ProfileStageName(tag);
                }
            }
            std::lock_guard<std::mutex> lock(mu_);
            ++folded_[stack];
            ++samples_;
        }
    }
}

void
SamplingProfiler::Stop()
{
    if (!running_.load(std::memory_order_acquire))
        return;
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    running_.store(false, std::memory_order_release);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        path = out_path_;
    }
    if (!path.empty()) {
        FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            Warn("profiler: cannot write %s", path.c_str());
        } else {
            const std::string text = FoldedText();
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
        }
    }
}

bool
SamplingProfiler::Running() const
{
    return running_.load(std::memory_order_acquire);
}

uint64_t
SamplingProfiler::Samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
}

std::vector<FoldedStack>
SamplingProfiler::Folded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FoldedStack> out;
    out.reserve(folded_.size());
    for (const auto& [stack, count] : folded_)
        out.push_back({stack, count});
    return out;
}

std::string
SamplingProfiler::FoldedText() const
{
    std::string out;
    for (const FoldedStack& f : Folded()) {
        out += f.stack;
        out += " ";
        out += std::to_string(f.count);
        out += "\n";
    }
    return out;
}

namespace {

SamplingProfiler&
EnvSampler()
{
    static SamplingProfiler sampler;
    return sampler;
}

std::mutex env_sampler_mu;
int env_sampler_refs = 0;

}  // namespace

SamplingProfiler*
SamplingProfiler::AcquireFromEnv()
{
    std::lock_guard<std::mutex> lock(env_sampler_mu);
    if (env_sampler_refs++ == 0) {
        // Opt-in, like RUMBA_STREAM_OUT / RUMBA_AUDIT_OUT: either
        // knob arms the sampler; neither set means no thread at all.
        // Thread wakeups are not free (tens of µs of scheduler CPU
        // per tick on a small virtualized box), so an unrequested
        // sampler would burn the whole <5% instrumentation budget
        // folding stacks nobody dumps.
        const char* hz_env = std::getenv("RUMBA_PROFILE_HZ");
        const char* out = std::getenv("RUMBA_PROFILE_OUT");
        const bool armed =
            (hz_env != nullptr && hz_env[0] != '\0') ||
            (out != nullptr && out[0] != '\0');
        if (armed) {
            double hz = 101.0;
            if (hz_env != nullptr && hz_env[0] != '\0')
                hz = std::strtod(hz_env, nullptr);
            EnvSampler().Start(hz, out != nullptr ? out : "");
        }
    }
    return &EnvSampler();
}

void
SamplingProfiler::Release()
{
    std::lock_guard<std::mutex> lock(env_sampler_mu);
    if (env_sampler_refs > 0 && --env_sampler_refs == 0)
        EnvSampler().Stop();
}

void
SamplingProfiler::StopEnv()
{
    std::lock_guard<std::mutex> lock(env_sampler_mu);
    EnvSampler().Stop();
}

// ----------------------------------------------------------- profilez

std::string
ProfilezJson()
{
    CpuProfiler& prof = CpuProfiler::Default();
    const sim::EfficiencyEstimate est = prof.Efficiency();
    SamplingProfiler& sampler = EnvSampler();

    double total = 0.0;
    double seconds[kStageCount] = {};
    for (size_t s = 1; s < kStageCount; ++s) {  // skip idle.
        seconds[s] =
            prof.StageSeconds(static_cast<ProfileStage>(s));
        total += seconds[s];
    }

    size_t sampled_threads;
    {
        std::lock_guard<std::mutex> lock(SlotMutex());
        sampled_threads = SlotList().size();
    }

    std::string out = "{";
    out += "\"schema_version\":1";
    out += ",\"cpu_seconds\":{";
    for (size_t s = 1; s < kStageCount; ++s) {
        out += "\"";
        out += kStageNames[s];
        out += "\":" + JsonNum(seconds[s]) + ",";
    }
    out += "\"total\":" + JsonNum(total) + "}";
    out += ",\"stage_share\":{";
    for (size_t s = 1; s < kStageCount; ++s) {
        if (s > 1)
            out += ",";
        out += "\"";
        out += kStageNames[s];
        out += "\":" +
               JsonNum(total > 0.0 ? seconds[s] / total : 0.0);
    }
    out += "}";
    out += ",\"sampler\":{";
    out += "\"running\":" +
           std::string(sampler.Running() ? "true" : "false");
    out += ",\"hz\":" + JsonNum(sampler.Hz());
    out += ",\"samples\":" +
           std::to_string(sampler.Samples());
    out += ",\"threads\":" + std::to_string(sampled_threads);
    out += "}";
    out += ",\"efficiency\":{";
    out += "\"speedup_estimate\":" + JsonNum(est.speedup);
    out += ",\"energy_ratio\":" + JsonNum(est.energy_ratio);
    out += ",\"window\":" + std::to_string(est.window);
    out += ",\"invocations\":" + std::to_string(est.invocations);
    out += "}";
    out += ",\"invocations\":" +
           std::to_string(prof.Invocations());
    out += "}";
    return out;
}

}  // namespace rumba::obs
