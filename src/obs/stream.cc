#include "obs/stream.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace rumba::obs {

int
ParseStreamPeriodMs(const char* value)
{
    if (value == nullptr || value[0] == '\0')
        return kDefaultStreamPeriodMs;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value)
        return kDefaultStreamPeriodMs;
    return std::clamp(static_cast<int>(parsed), kMinStreamPeriodMs,
                      kMaxStreamPeriodMs);
}

SnapshotStreamer::~SnapshotStreamer()
{
    Stop();
}

bool
SnapshotStreamer::Start(const std::string& path, int period_ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (running_)
        return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        Warn("snapshot streamer: could not open %s", path.c_str());
        return false;
    }
    file_ = f;
    period_ms_ = std::clamp(period_ms, kMinStreamPeriodMs,
                            kMaxStreamPeriodMs);
    start_time_ = std::chrono::steady_clock::now();
    samples_ = 0;
    prev_counters_.clear();
    prev_dcounters_.clear();
    prev_gauges_.clear();
    // Header first, before the thread exists: no concurrent writers.
    const std::string meta = MetadataJsonLine() + "\n";
    std::fwrite(meta.data(), 1, meta.size(), file_);
    std::fflush(file_);
    stop_requested_ = false;
    running_ = true;
    thread_ = std::thread(&SnapshotStreamer::Loop, this);
    return true;
}

void
SnapshotStreamer::Stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_)
            return;
        stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();  // the loop writes its final sample before exiting.
    std::lock_guard<std::mutex> lock(mu_);
    std::fclose(file_);
    file_ = nullptr;
    running_ = false;
}

bool
SnapshotStreamer::Running() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return running_;
}

uint64_t
SnapshotStreamer::Samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
}

void
SnapshotStreamer::SetChangedOnly(bool on)
{
    changed_only_.store(on, std::memory_order_relaxed);
}

bool
SnapshotStreamer::ChangedOnly() const
{
    return changed_only_.load(std::memory_order_relaxed);
}

void
SnapshotStreamer::Loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        const bool stopping = stop_requested_;
        lock.unlock();
        WriteSample();
        lock.lock();
        ++samples_;
        if (stopping)
            return;
        cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                     [this] { return stop_requested_; });
        // A stop request still gets one final (flushed) sample above.
    }
}

void
SnapshotStreamer::WriteSample()
{
    const Span span("stream.sample");
    const RegistrySnapshot snapshot = Registry::Default().Snapshot();
    const double t_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_time_)
            .count();

    std::string line = "{\"type\":\"sample\",\"t_ms\":" + JsonNum(t_ms);

    line += ",\"counters\":{";
    bool first = true;
    for (const CounterSnapshot& c : snapshot.counters) {
        const uint64_t prev = prev_counters_[c.name];
        prev_counters_[c.name] = c.value;
        if (!first)
            line += ",";
        first = false;
        line += JsonQuote(c.name) + ":" +
                std::to_string(c.value - std::min(prev, c.value));
    }
    for (const DoubleCounterSnapshot& c : snapshot.dcounters) {
        const double prev = prev_dcounters_[c.name];
        prev_dcounters_[c.name] = c.value;
        if (!first)
            line += ",";
        first = false;
        line += JsonQuote(c.name) + ":" +
                JsonNum(std::max(0.0, c.value - prev));
    }
    const bool changed_only =
        changed_only_.load(std::memory_order_relaxed);
    line += "},\"gauges\":{";
    first = true;
    for (const GaugeSnapshot& g : snapshot.gauges) {
        if (changed_only) {
            const auto it = prev_gauges_.find(g.name);
            const bool unchanged =
                it != prev_gauges_.end() && it->second == g.value;
            prev_gauges_[g.name] = g.value;
            if (unchanged)
                continue;
        } else {
            prev_gauges_[g.name] = g.value;
        }
        if (!first)
            line += ",";
        first = false;
        line += JsonQuote(g.name) + ":" + JsonNum(g.value);
    }
    line += "}";

    TraceEvent latest;
    if (TraceRing::Default().Latest(&latest)) {
        const double fire_rate =
            latest.elements == 0
                ? 0.0
                : static_cast<double>(latest.fires) /
                      static_cast<double>(latest.elements);
        line += ",\"trace\":{\"invocation\":" +
                std::to_string(latest.invocation) +
                ",\"threshold\":" + JsonNum(latest.threshold) +
                ",\"fire_rate\":" + JsonNum(fire_rate) +
                ",\"queue_full_stalls\":" +
                std::to_string(latest.queue_full_stalls) +
                ",\"queue_drops\":" +
                std::to_string(latest.queue_drops) +
                ",\"non_finite\":" + std::to_string(latest.non_finite) +
                ",\"output_error_pct\":" +
                JsonNum(latest.output_error_pct) +
                ",\"estimated_error_pct\":" +
                JsonNum(latest.estimated_error_pct) +
                ",\"drift\":" + (latest.drift ? "true" : "false") +
                ",\"breaker_state\":" +
                std::to_string(latest.breaker_state) + "}";
    }
    line += "}\n";
    // One whole line per fwrite + flush: a reader (or a crash) never
    // sees a torn record.
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
}

SnapshotStreamer&
SnapshotStreamer::Default()
{
    // Leaked on purpose: the at-exit hook (obs/export.h) stops it
    // before static destruction, and leaking sidesteps any teardown
    // race with late samples.
    static SnapshotStreamer* streamer = new SnapshotStreamer();
    return *streamer;
}

namespace {

std::mutex env_refcount_mu;
int env_refcount = 0;
bool env_started = false;

}  // namespace

void
SnapshotStreamer::AcquireFromEnv()
{
    std::lock_guard<std::mutex> lock(env_refcount_mu);
    if (++env_refcount != 1)
        return;
    const char* path = std::getenv("RUMBA_STREAM_OUT");
    if (path == nullptr || path[0] == '\0')
        return;
    const int period =
        ParseStreamPeriodMs(std::getenv("RUMBA_STREAM_PERIOD_MS"));
    if (const char* changed = std::getenv("RUMBA_STREAM_CHANGED_ONLY");
        changed != nullptr && changed[0] != '\0' &&
        changed[0] != '0') {
        Default().SetChangedOnly(true);
    }
    env_started = Default().Start(path, period);
    if (env_started)
        Debug("RUMBA_STREAM_OUT: streaming samples to %s every %d ms",
              path, period);
}

void
SnapshotStreamer::Release()
{
    std::lock_guard<std::mutex> lock(env_refcount_mu);
    if (--env_refcount != 0 || !env_started)
        return;
    env_started = false;
    Default().Stop();
}

}  // namespace rumba::obs
