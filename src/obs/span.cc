#include "obs/span.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/timer.h"

namespace rumba::obs {

/**
 * One thread's span storage. Appends and drains take the buffer's own
 * mutex (uncontended in steady state: only the owning thread appends,
 * exporters drain rarely). open_depth is touched only by the owning
 * thread, so it needs no lock.
 */
struct SpanCollector::ThreadBuffer {
    std::mutex mu;
    std::vector<SpanRecord> spans;
    uint64_t dropped = 0;
    size_t capacity = 0;
    uint32_t thread_id = 0;
    uint32_t open_depth = 0;  ///< owning-thread-only nesting counter.
};

namespace {

/** Monotonically identifies collectors for the thread-local cache. */
std::atomic<uint64_t> next_collector_id{1};

/** One thread's (collector -> buffer) bindings. Threads touch a
 *  handful of collectors at most, so a linear scan beats a map. */
struct TlsBinding {
    uint64_t collector_id;
    std::shared_ptr<SpanCollector::ThreadBuffer> buffer;
};

thread_local std::vector<TlsBinding> tls_bindings;

}  // namespace

SpanCollector::SpanCollector(size_t per_thread_capacity)
    : per_thread_capacity_(per_thread_capacity),
      collector_id_(next_collector_id.fetch_add(1))
{
    RUMBA_CHECK(per_thread_capacity > 0);
}

SpanCollector::ThreadBuffer*
SpanCollector::BufferForThisThread()
{
    for (const TlsBinding& binding : tls_bindings) {
        if (binding.collector_id == collector_id_)
            return binding.buffer.get();
    }
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->capacity = per_thread_capacity_;
    {
        std::lock_guard<std::mutex> lock(mu_);
        buffer->thread_id = ++next_thread_id_;
        buffers_.push_back(buffer);
    }
    tls_bindings.push_back(TlsBinding{collector_id_, buffer});
    return tls_bindings.back().buffer.get();
}

std::vector<SpanRecord>
SpanCollector::Dump() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(mu_);
        buffers = buffers_;
    }
    std::vector<SpanRecord> all;
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mu);
        all.insert(all.end(), buffer->spans.begin(),
                   buffer->spans.end());
    }
    std::sort(all.begin(), all.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  if (a.start_ns != b.start_ns)
                      return a.start_ns < b.start_ns;
                  return a.depth < b.depth;  // parents before children.
              });
    return all;
}

uint64_t
SpanCollector::TotalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        total += buffer->spans.size();
    }
    return total;
}

uint64_t
SpanCollector::Dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t dropped = 0;
    for (const auto& buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        dropped += buffer->dropped;
    }
    return dropped;
}

size_t
SpanCollector::ThreadCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return buffers_.size();
}

void
SpanCollector::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mu);
        buffer->spans.clear();
        buffer->dropped = 0;
    }
}

SpanCollector&
SpanCollector::Default()
{
    static SpanCollector* collector = [] {
        auto* c = new SpanCollector();
        const char* path = std::getenv("RUMBA_TRACE_OUT");
        if (path != nullptr && path[0] != '\0')
            c->Enable();
        return c;
    }();
    return *collector;
}

Span::Span(const char* name, SpanCollector* collector)
    : buffer_(nullptr), name_(name)
{
    SpanCollector* target =
        collector != nullptr ? collector : &SpanCollector::Default();
    if (!target->Enabled())
        return;
    buffer_ = target->BufferForThisThread();
    depth_ = buffer_->open_depth++;
    start_ns_ = NowNs();
}

Span::~Span()
{
    if (buffer_ == nullptr)
        return;
    const uint64_t end_ns = NowNs();
    --buffer_->open_depth;
    std::lock_guard<std::mutex> lock(buffer_->mu);
    if (buffer_->spans.size() >= buffer_->capacity) {
        ++buffer_->dropped;  // keep the trace's beginning.
        return;
    }
    SpanRecord record;
    record.name = name_;
    record.start_ns = start_ns_;
    record.duration_ns = end_ns - start_ns_;
    record.thread_id = buffer_->thread_id;
    record.depth = depth_;
    buffer_->spans.push_back(std::move(record));
}

std::string
ToChromeTrace(const std::vector<SpanRecord>& spans, uint64_t dropped,
              size_t per_thread_capacity)
{
    uint64_t base_ns = spans.empty() ? 0 : spans.front().start_ns;
    for (const SpanRecord& s : spans)
        base_ns = std::min(base_ns, s.start_ns);

    std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":";
    // Reuse the run-metadata object, grafting the span bookkeeping in.
    std::string meta = MetadataJsonLine();
    RUMBA_CHECK(!meta.empty() && meta.back() == '}');
    meta.pop_back();
    out += meta;
    out += ",\"span_dropped\":" + std::to_string(dropped) +
           ",\"span_per_thread_capacity\":" +
           std::to_string(per_thread_capacity) + "}";
    out += ",\"traceEvents\":[";
    bool first = true;
    for (const SpanRecord& s : spans) {
        if (!first)
            out += ",";
        first = false;
        out += "\n{\"name\":" + JsonQuote(s.name) +
               ",\"cat\":\"rumba\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
               std::to_string(s.thread_id) + ",\"ts\":" +
               JsonNum(static_cast<double>(s.start_ns - base_ns) /
                       1000.0) +
               ",\"dur\":" +
               JsonNum(static_cast<double>(s.duration_ns) / 1000.0) +
               ",\"args\":{\"depth\":" + std::to_string(s.depth) + "}}";
    }
    out += "\n]}\n";
    return out;
}

bool
WriteChromeTraceFile(const std::string& path)
{
    SpanCollector& collector = SpanCollector::Default();
    const std::string body =
        ToChromeTrace(collector.Dump(), collector.Dropped(),
                      collector.PerThreadCapacity());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    return std::fclose(f) == 0 && written == body.size();
}

std::string
ExportTraceIfConfigured()
{
    const char* path = std::getenv("RUMBA_TRACE_OUT");
    if (path == nullptr || path[0] == '\0')
        return "";
    Debug("RUMBA_TRACE_OUT: exporting %zu spans to %s",
          static_cast<size_t>(SpanCollector::Default().TotalRecorded()),
          path);
    if (!WriteChromeTraceFile(path)) {
        Warn("RUMBA_TRACE_OUT: could not write %s", path);
        return "";
    }
    return path;
}

}  // namespace rumba::obs
