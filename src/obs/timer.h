#ifndef RUMBA_OBS_TIMER_H_
#define RUMBA_OBS_TIMER_H_

/**
 * @file
 * Scoped wall-clock timers for the online loop's hot paths. A
 * ScopedTimer measures from construction to destruction on the
 * steady clock and records the elapsed nanoseconds into a latency
 * histogram, so p50/p90/p99 of every instrumented path fall out of a
 * registry snapshot.
 */

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace rumba::obs {

/** Monotonic wall-clock now, in nanoseconds. */
inline uint64_t
NowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Records scope wall time (ns) into a histogram on destruction. */
class ScopedTimer {
  public:
    /** @param histogram destination; nullptr disables the timer. */
    explicit ScopedTimer(Histogram* histogram)
        : histogram_(histogram), start_ns_(histogram ? NowNs() : 0)
    {
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer()
    {
        if (histogram_ != nullptr)
            histogram_->Observe(static_cast<double>(NowNs() - start_ns_));
    }

  private:
    Histogram* histogram_;
    uint64_t start_ns_;
};

}  // namespace rumba::obs

#endif  // RUMBA_OBS_TIMER_H_
