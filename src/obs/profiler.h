#ifndef RUMBA_OBS_PROFILER_H_
#define RUMBA_OBS_PROFILER_H_

/**
 * @file
 * Live cost & efficiency profiler: where does the CPU time go, and
 * what do the paper's efficiency figures look like *right now*?
 *
 * Three cooperating pieces:
 *
 * 1. Per-stage thread-CPU attribution. The serving pipeline's stage
 *    boundaries (queue_wait / device / predict_check / recover /
 *    merge / audit / verify) are bracketed with CLOCK_THREAD_CPUTIME_ID
 *    reads (see StageScope and RumbaRuntime's cpu_attribution mode)
 *    and the deltas accumulate into `cpu_stage_seconds.<stage>`
 *    DoubleCounters (exposed as `rumba_cpu_stage_seconds_*_total`)
 *    plus per-shard variants and per-invocation stage-share
 *    histograms — the paper's Figure 18 CPU-activity breakdown as a
 *    live /metrics series.
 *
 * 2. A sampling profiler. Every worker thread keeps a lock-free
 *    fixed-depth stack of stage tags in a per-thread slot; a
 *    background thread wakes at RUMBA_PROFILE_HZ (101 Hz when only
 *    RUMBA_PROFILE_OUT is set — prime, so it cannot alias against
 *    millisecond-periodic work; 0 disables; neither knob set spawns
 *    no thread at all) and appends one sample of every registered
 *    thread's current stack. Samples fold into
 *    flamegraph-compatible "shard0;device;predict_check 42" lines
 *    (RUMBA_PROFILE_OUT), independently validating the exact
 *    attribution.
 *
 * 3. An online efficiency estimator. Each invocation's modeled
 *    sim::SystemCosts feed a rolling sim::EfficiencyWindow; the
 *    aggregate exports `efficiency.speedup_estimate` and
 *    `efficiency.energy_ratio` gauges — Figures 14/15 as live
 *    series.
 *
 * Concurrency: stage tag pushes/pops are relaxed atomic stores into
 * the calling thread's own slot (safe to tear against the sampler —
 * a torn read misattributes one sample, it cannot corrupt). CPU
 * accounting adds two clock_gettime syscalls per scope, so scopes
 * are stage-granular, never per-element. The estimator serializes
 * behind a mutex (one push per invocation).
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "sim/system_model.h"

namespace rumba::obs {

/** Pipeline stages the profiler attributes time to. */
enum class ProfileStage : uint8_t {
    kIdle = 0,       ///< registered but outside any stage.
    kQueueWait,      ///< worker blocked popping the shard queue.
    kDevice,         ///< accelerator (NPU) streaming.
    kPredictCheck,   ///< per-element quality-checker prediction.
    kRecover,        ///< exact re-execution (drain + breaker tail).
    kCompensate,     ///< compensate-tier in-place correction.
    kMerge,          ///< scatter of shard outputs into responses.
    kAudit,          ///< ground-truth shadow re-execution.
    kVerify,         ///< trainer-mode verification pass.
    kOther,          ///< instrumented but unnamed work.
    kStageCount,     ///< number of stages (array sizing).
};

/** Stable lowercase name for @p stage ("queue_wait", "device", ...). */
const char* ProfileStageName(ProfileStage stage);

/** Current thread's CPU time (CLOCK_THREAD_CPUTIME_ID), in ns. */
int64_t ThreadCpuNowNs();

/**
 * One thread's lock-free sampling slot: a fixed-depth stack of stage
 * tags plus the owning shard. The owner thread pushes/pops with
 * relaxed stores; the sampler thread reads with relaxed loads.
 */
struct ThreadSlot {
    static constexpr size_t kMaxDepth = 8;

    std::atomic<uint32_t> depth{0};
    std::atomic<uint8_t> stack[kMaxDepth] = {};
    std::atomic<int32_t> shard{-1};  ///< -1 = not a shard worker.
    std::atomic<bool> alive{true};   ///< false once the thread exits.
};

/**
 * Per-process stage-attribution sink. Registers its instruments in a
 * Registry and accumulates CPU seconds per stage (total and per
 * shard), per-invocation stage shares, and the rolling efficiency
 * window.
 */
class CpuProfiler {
  public:
    /** Per-invocation stage CPU breakdown, in nanoseconds. */
    struct InvocationCpu {
        int64_t queue_wait_ns = 0;
        int64_t device_ns = 0;
        int64_t predict_check_ns = 0;
        int64_t recover_ns = 0;
        int64_t compensate_ns = 0;
        int64_t merge_ns = 0;
        int64_t audit_ns = 0;
        int64_t verify_ns = 0;
    };

    /** @param registry instrument sink (tests pass their own). */
    explicit CpuProfiler(Registry* registry);

    /** Add @p ns of CPU time to @p stage for @p shard (shard < 0
     *  skips the per-shard series). Used for stages recorded outside
     *  an invocation (audit pool, queue waits folded later). */
    void AddStageCpuNs(ProfileStage stage, int shard, int64_t ns);

    /** Record one invocation's full stage breakdown: accumulates the
     *  stage counters and observes the per-invocation stage-share
     *  histograms (share of the invocation's total attributed CPU). */
    void RecordInvocation(int shard, const InvocationCpu& cpu);

    /** Feed one invocation's modeled costs into the rolling
     *  efficiency window and refresh the estimate gauges. */
    void RecordCosts(const sim::SystemCosts& costs);

    /** Current rolling efficiency estimate. */
    sim::EfficiencyEstimate Efficiency() const;

    /** Total attributed CPU seconds for @p stage. */
    double StageSeconds(ProfileStage stage) const;

    /** Invocations recorded via RecordInvocation. */
    uint64_t Invocations() const;

    /**
     * The process-wide profiler every serving engine feeds
     * (instruments live in Registry::Default()).
     */
    static CpuProfiler& Default();

  private:
    Registry* registry_;
    /** cpu_stage_seconds.<stage> totals, indexed by stage. */
    DoubleCounter* stage_seconds_[static_cast<size_t>(
        ProfileStage::kStageCount)] = {};
    /** stage-share-of-invocation histograms, indexed by stage. */
    Histogram* stage_share_[static_cast<size_t>(
        ProfileStage::kStageCount)] = {};
    Counter* invocations_;

    /** Per-shard counters register lazily (shard count is dynamic). */
    std::mutex shard_mu_;
    std::vector<std::array<DoubleCounter*,
                           static_cast<size_t>(
                               ProfileStage::kStageCount)>>
        shard_seconds_;

    DoubleCounter* ShardStageCounter(int shard, ProfileStage stage);

    mutable std::mutex window_mu_;
    sim::EfficiencyWindow window_;
    Gauge* speedup_gauge_;
    Gauge* energy_gauge_;
    Gauge* window_gauge_;
};

/**
 * RAII stage bracket. Construction pushes @p stage onto the calling
 * thread's sampling slot (always — relaxed stores are nearly free);
 * destruction pops it. When @p account is true it also reads
 * CLOCK_THREAD_CPUTIME_ID at both ends and reports the delta, either
 * into @p sink_ns (caller aggregates into an InvocationCpu) or
 * straight to CpuProfiler::Default() when @p sink_ns is null.
 */
class StageScope {
  public:
    explicit StageScope(ProfileStage stage, bool account = false,
                        int64_t* sink_ns = nullptr, int shard = -1);
    ~StageScope();

    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

  private:
    ProfileStage stage_;
    bool account_;
    int64_t* sink_ns_;
    int shard_;
    int64_t start_ns_ = 0;
    /** False when the parent frame already carries the same tag (the
     *  frame is elided so "device;device" never appears). */
    bool pushed_ = true;
};

/** Bind the calling thread to @p shard in its sampling slot (shows
 *  up as the "shardN" frame in folded stacks and routes queue-wait
 *  attribution). Call once from each worker thread. */
void BindThreadShard(int shard);

/** One captured folded stack with its occurrence count. */
struct FoldedStack {
    std::string stack;  ///< "shard0;device;predict_check".
    uint64_t count = 0;
};

/**
 * The background sampling profiler. Start() spawns the sampler
 * thread (hz <= 0 is a no-op: no thread, no samples); Stop() joins
 * it and, when an output path was given, writes the folded-stacks
 * dump. AcquireFromEnv()/Release() refcount a process-wide instance
 * configured by RUMBA_PROFILE_HZ / RUMBA_PROFILE_OUT so several
 * engines share one sampler.
 */
class SamplingProfiler {
  public:
    SamplingProfiler() = default;
    ~SamplingProfiler();

    SamplingProfiler(const SamplingProfiler&) = delete;
    SamplingProfiler& operator=(const SamplingProfiler&) = delete;

    /** Spawn the sampler at @p hz; @p out_path ("" = none) receives
     *  the folded dump on Stop(). No-op if hz <= 0 or running. */
    void Start(double hz, const std::string& out_path);

    /** Join the sampler and write the folded dump. Safe to call
     *  when not running. */
    void Stop();

    /** True while the sampler thread is live. */
    bool Running() const;

    /** Samples captured so far (one per registered thread per tick). */
    uint64_t Samples() const;

    /** Sampling rate passed to Start (0 when never started). */
    double Hz() const { return hz_; }

    /** Current folded stacks, sorted by stack text. */
    std::vector<FoldedStack> Folded() const;

    /** Folded stacks as "stack count\n" lines (flamegraph input). */
    std::string FoldedText() const;

    /**
     * Refcounted process-wide sampler, opt-in via RUMBA_PROFILE_HZ
     * and/or RUMBA_PROFILE_OUT (neither set: no thread; HZ unset
     * with OUT set: 101 Hz; HZ=0: disabled). The first acquire
     * starts it; the last release stops it and writes the dump.
     * Always returns the instance (running or not).
     */
    static SamplingProfiler* AcquireFromEnv();
    static void Release();

    /** Exit-path backstop: stop the env sampler (writing its dump)
     *  regardless of outstanding refs. Idempotent; used by the
     *  at-exit exporter so RUMBA_PROFILE_OUT survives code paths
     *  that never release (e.g. leaked engines). */
    static void StopEnv();

  private:
    void Loop();

    mutable std::mutex mu_;
    std::map<std::string, uint64_t> folded_;
    uint64_t samples_ = 0;
    double hz_ = 0.0;
    std::string out_path_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/**
 * /profilez JSON body: stage CPU totals and shares, sampler state,
 * and the rolling efficiency estimate. Flat/nested objects only (no
 * arrays — rumba-stat's mini parser flattens dotted keys).
 */
std::string ProfilezJson();

}  // namespace rumba::obs

#endif  // RUMBA_OBS_PROFILER_H_
