#ifndef RUMBA_OBS_SLO_H_
#define RUMBA_OBS_SLO_H_

/**
 * @file
 * Rolling SLO burn-rate monitoring for the online quality loop.
 *
 * An SLO is an objective over a stream of good/bad events ("99% of
 * requests complete under the latency bound", "99.9% of invocations
 * meet the output-quality target"). The monitor keeps two rolling
 * windows — a fast one that reacts within seconds and a slow one that
 * filters noise — and evaluates the *burn rate* of each:
 *
 *     burn = bad_fraction / error_budget,
 *     error_budget = 1 - objective.
 *
 * burn == 1 means the error budget is being consumed exactly as
 * provisioned; burn == 10 means ten times too fast. An alert fires
 * only when BOTH windows exceed their thresholds (the classic
 * multi-window rule: the fast window proves the problem is happening
 * *now*, the slow window proves it is not a blip) and clears with
 * hysteresis once the fast window drops below its threshold.
 *
 * Every Record() refreshes three gauges in Registry::Default() —
 * `slo.<name>.fast_burn_rate`, `slo.<name>.slow_burn_rate`,
 * `slo.<name>.alerting` — and firing increments the
 * `slo.<name>.alerts` counter, so the scrape endpoint
 * (obs/http_exporter.h) exposes burn rates live. An optional alert
 * sink receives fire/clear edges; the deploy example wires it to the
 * circuit breaker's canary probe.
 *
 * Thread-safe; time is injectable for tests (pass now_ns to Record).
 */

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace rumba::obs {

class Counter;
class Gauge;

/** Configuration of one service-level objective. */
struct SloConfig {
    /** Metric-name fragment; gauges register as `slo.<name>.*`. */
    std::string name = "objective";
    /** Target good fraction in (0, 1), e.g. 0.99 for "99% good". */
    double objective = 0.99;
    /** Fast (page-worthy) window length. */
    uint64_t fast_window_ns = 60ull * 1000 * 1000 * 1000;
    /** Slow (confirmation) window length. */
    uint64_t slow_window_ns = 600ull * 1000 * 1000 * 1000;
    /** Fast-window burn rate that arms an alert. */
    double fast_burn_alert = 10.0;
    /** Slow-window burn rate that (together) fires it. */
    double slow_burn_alert = 2.0;
    /** Ring granularity: buckets per slow window. */
    uint32_t buckets = 60;
    /** Events required in the fast window before alerting (keeps a
     *  single early failure from paging). */
    uint64_t min_events = 10;
};

/** One fire/clear edge delivered to the alert sink. */
struct SloAlert {
    std::string name;       ///< SloConfig::name.
    bool firing = false;    ///< true = fired, false = cleared.
    double fast_burn = 0.0; ///< fast-window burn rate at the edge.
    double slow_burn = 0.0; ///< slow-window burn rate at the edge.
    uint64_t now_ns = 0;    ///< event time (steady clock).
};

/**
 * Multi-window burn-rate evaluator for one objective. Events land in
 * a bucketed ring covering the slow window; expired buckets are
 * recycled lazily by epoch tag, so Record() is O(1) and Evaluate() is
 * O(buckets).
 */
class SloMonitor {
  public:
    explicit SloMonitor(const SloConfig& config);

    /** Record one event. @p now_ns 0 means "read the steady clock". */
    void Record(bool good, uint64_t now_ns = 0);

    /** Burn rate over the fast window as of @p now_ns. */
    double FastBurnRate(uint64_t now_ns = 0) const;

    /** Burn rate over the slow window as of @p now_ns. */
    double SlowBurnRate(uint64_t now_ns = 0) const;

    /** True while the alert is firing. */
    bool Alerting() const;

    /** Fire/clear edges delivered so far (fires only). */
    uint64_t AlertCount() const;

    /** Install the fire/clear edge sink (nullptr clears). Edges are
     *  also logged. The sink is invoked AFTER the monitor's lock is
     *  released, so it may call back into the monitor (Alerting(),
     *  burn-rate accessors, even Record()) and a slow sink delays
     *  only the recording thread that hit the edge. Under concurrent
     *  Record() calls, edge deliveries may interleave out of order —
     *  treat SloAlert::firing as the state at the edge, not the
     *  current state. */
    void SetAlertSink(std::function<void(const SloAlert&)> sink);

    const SloConfig& Config() const { return config_; }

  private:
    struct Bucket {
        uint64_t epoch = 0;  ///< bucket index since time zero.
        uint64_t good = 0;
        uint64_t bad = 0;
    };

    uint64_t BucketWidthNs() const;
    void AdvanceLocked(uint64_t now_ns);
    void SumWindowLocked(uint64_t now_ns, uint64_t window_ns,
                         uint64_t* good, uint64_t* bad) const;
    double BurnLocked(uint64_t now_ns, uint64_t window_ns) const;
    /** Refresh gauges/alert state; true if a fire/clear edge occurred
     *  (then @p out_alert is filled for post-unlock delivery). */
    bool EvaluateLocked(uint64_t now_ns, SloAlert* out_alert);

    const SloConfig config_;
    mutable std::mutex mu_;
    std::vector<Bucket> ring_;
    bool alerting_ = false;
    uint64_t alerts_ = 0;
    std::function<void(const SloAlert&)> sink_;
    Gauge* fast_gauge_;   ///< slo.<name>.fast_burn_rate
    Gauge* slow_gauge_;   ///< slo.<name>.slow_burn_rate
    Gauge* alert_gauge_;  ///< slo.<name>.alerting (0/1)
    Counter* alert_counter_;  ///< slo.<name>.alerts
};

}  // namespace rumba::obs

#endif  // RUMBA_OBS_SLO_H_
