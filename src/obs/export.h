#ifndef RUMBA_OBS_EXPORT_H_
#define RUMBA_OBS_EXPORT_H_

/**
 * @file
 * Metric and trace exporters: JSONL (one JSON object per line), CSV,
 * and a human-readable table built on common/table. The
 * RUMBA_METRICS_OUT environment variable names a sink file that is
 * written automatically at process exit (armed on first use of
 * Registry::Default()), so every bench and example emits telemetry
 * without code changes; the extension picks the format (.csv writes
 * CSV, anything else JSONL). The same at-exit hook flushes the
 * RUMBA_TRACE_OUT span trace (obs/span.h) and stops the
 * RUMBA_STREAM_OUT sampler (obs/stream.h).
 *
 * Every file export opens with a run-metadata header — schema
 * version, ISO-8601 wall time, hostname, build type, sanitizer flags,
 * trace-ring capacity — so tools/rumba-stat can refuse to diff
 * incompatible dumps.
 */

#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rumba::obs {

/**
 * Version of the exported metric/trace/sample schema. Bump when a
 * field changes meaning; rumba-stat refuses to diff dumps whose
 * versions differ.
 */
inline constexpr int kMetricsSchemaVersion = 2;

/** Everything the run-metadata header records about this process. */
struct RunMetadata {
    int schema_version = kMetricsSchemaVersion;
    std::string wall_time_iso8601;  ///< UTC, e.g. 2026-08-07T12:00:00Z.
    std::string hostname;
    std::string version;         ///< project version at compile time.
    std::string git_describe;    ///< `git describe` at compile time.
    std::string build_type;      ///< CMAKE_BUILD_TYPE at compile time.
    std::string sanitizers;      ///< RUMBA_SANITIZE flags ("" = none).
    size_t trace_ring_capacity = 0;  ///< effective TraceRing capacity.
};

/** Collect the current process's run metadata. */
RunMetadata CollectRunMetadata();

/**
 * The run-metadata header as a single JSON object line (no trailing
 * newline): {"type":"meta","schema_version":...,...}.
 */
std::string MetadataJsonLine();

/**
 * Escape @p s for use inside a JSON string literal (quotes,
 * backslashes, and control characters; no surrounding quotes).
 */
std::string EscapeJson(const std::string& s);

/** @p s as a complete JSON string literal (quoted and escaped). */
std::string JsonQuote(const std::string& s);

/** JSON-safe number rendering: finite values via %.9g, otherwise 0. */
std::string JsonNum(double v);

/**
 * Render a snapshot as JSONL. Each metric becomes one line tagged
 * with "type" (counter / gauge / histogram); each trace event becomes
 * one "trace" line.
 */
std::string ToJsonl(const RegistrySnapshot& snapshot,
                    const std::vector<TraceEvent>& trace = {});

/**
 * Render a snapshot as CSV with header
 * type,name,count,value,sum,min,max,p50,p90,p99 (trace events are a
 * JSONL-only concern).
 */
std::string ToCsv(const RegistrySnapshot& snapshot);

/** Render a snapshot as an aligned console table. */
Table ToTable(const RegistrySnapshot& snapshot);

/**
 * Snapshot the default registry and trace ring and write them to
 * @p path (format by extension: .csv selects CSV, otherwise JSONL),
 * preceded by the run-metadata header (a "# "-prefixed comment line
 * in CSV). Returns false on I/O error.
 */
bool WriteMetricsFile(const std::string& path);

/**
 * Honor RUMBA_METRICS_OUT: when the variable names a file, write the
 * current default-registry snapshot there and return the path; when
 * unset (or on I/O failure, after a warning) return "". Idempotent —
 * each call rewrites the file with the latest snapshot, and the
 * at-exit hook makes the final call.
 */
std::string ExportIfConfigured();

/**
 * Build-info surface for the /buildz scrape route: version, git
 * describe (compile-time defines), build type, sanitizer flags,
 * schema version, and every RUMBA_* feature env knob currently set —
 * one JSON object (no trailing newline).
 */
std::string BuildInfoJson();

/**
 * Arm the at-exit telemetry flush (once per process): stop the
 * RUMBA_STREAM_OUT sampler, then export RUMBA_METRICS_OUT,
 * RUMBA_TRACE_OUT, RUMBA_REQTRACE_OUT and RUMBA_AUDIT_OUT. Called
 * automatically by Registry::Default(). When any of those sinks is
 * configured this also arms the best-effort SIGINT/SIGTERM flush
 * (see InstallSignalFlush).
 */
void InstallAtExitExport();

/**
 * Register a best-effort flush hook, invoked (in registration order)
 * alongside the env-configured JSONL sink rewrites by both the
 * at-exit export and the SIGINT/SIGTERM flush. For sinks configured
 * programmatically rather than by env var — the load generator's and
 * scenario runner's JSONL reports — so a killed run still writes its
 * partial results. Hooks run in signal context: they must only
 * try-lock, never block or allocate unboundedly. Re-registering the
 * same function is a no-op; the table holds 8 slots (false, with a
 * warning, when full or @p hook is null).
 */
bool RegisterFlushHook(void (*hook)());

/**
 * Best-effort flush of the configured JSONL sinks on SIGINT/SIGTERM,
 * so killed deploy runs don't lose the tail of the stream. Installed
 * only over SIG_DFL dispositions (an application's own handlers are
 * never displaced); after flushing, the default disposition is
 * restored and the signal re-raised so the process still dies with
 * the right status. The flush calls stdio from a signal handler —
 * technically async-signal-unsafe, accepted here as best-effort
 * (the alternative is certain data loss). Idempotent.
 */
void InstallSignalFlush();

}  // namespace rumba::obs

#endif  // RUMBA_OBS_EXPORT_H_
