#ifndef RUMBA_OBS_EXPORT_H_
#define RUMBA_OBS_EXPORT_H_

/**
 * @file
 * Metric and trace exporters: JSONL (one JSON object per line), CSV,
 * and a human-readable table built on common/table. The
 * RUMBA_METRICS_OUT environment variable names a sink file that is
 * written automatically at process exit (armed on first use of
 * Registry::Default()), so every bench and example emits telemetry
 * without code changes; the extension picks the format (.csv writes
 * CSV, anything else JSONL).
 */

#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rumba::obs {

/**
 * Render a snapshot as JSONL. Each metric becomes one line tagged
 * with "type" (counter / gauge / histogram); each trace event becomes
 * one "trace" line.
 */
std::string ToJsonl(const RegistrySnapshot& snapshot,
                    const std::vector<TraceEvent>& trace = {});

/**
 * Render a snapshot as CSV with header
 * type,name,count,value,sum,min,max,p50,p90,p99 (trace events are a
 * JSONL-only concern).
 */
std::string ToCsv(const RegistrySnapshot& snapshot);

/** Render a snapshot as an aligned console table. */
Table ToTable(const RegistrySnapshot& snapshot);

/**
 * Snapshot the default registry and trace ring and write them to
 * @p path (format by extension: .csv selects CSV, otherwise JSONL).
 * Returns false on I/O error.
 */
bool WriteMetricsFile(const std::string& path);

/**
 * Honor RUMBA_METRICS_OUT: when the variable names a file, write the
 * current default-registry snapshot there and return the path; when
 * unset (or on I/O failure, after a warning) return "". Idempotent —
 * each call rewrites the file with the latest snapshot, and the
 * at-exit hook makes the final call.
 */
std::string ExportIfConfigured();

/**
 * Arm the at-exit RUMBA_METRICS_OUT exporter (once per process).
 * Called automatically by Registry::Default().
 */
void InstallAtExitExport();

}  // namespace rumba::obs

#endif  // RUMBA_OBS_EXPORT_H_
