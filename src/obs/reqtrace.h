#ifndef RUMBA_OBS_REQTRACE_H_
#define RUMBA_OBS_REQTRACE_H_

/**
 * @file
 * Request-scoped tracing for the serving layer. Where obs/span.h
 * records an anonymous per-thread timeline and obs/trace.h records
 * one ring entry per accelerator invocation, this module follows one
 * *client request* end to end: the serving engine assigns every
 * submitted InvocationRequest a process-unique trace id, carries it
 * through the shard queue, the worker, any coalesced batch, the
 * breaker-degraded and recovery paths, and records one RequestTrace —
 * a flat span tree (queue-wait, device, check, recover, merge) plus
 * outcome flags — when the request's future resolves.
 *
 * Keeping every trace of a heavy-traffic serving process is
 * pointless; keeping the *interesting* ones is the whole value. The
 * collector therefore applies tail-based sampling at record time,
 * when the outcome is known: traces that recovered elements, ran
 * under a non-closed breaker, were rejected or cancelled, or
 * exceeded a latency bound are always kept; of the healthy remainder
 * one in `sample_every` survives. Kept traces land in a bounded ring
 * (oldest evicted) and export as JSONL; RUMBA_REQTRACE_OUT arms an
 * at-exit dump of the default collector (obs/export.h).
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rumba::obs {

/** One timed stage of a request's life (flat span tree: parents are
 *  implied by containment of [start, start+duration) intervals). */
struct RequestSpan {
    /** Stage name; the serving engine emits "queue_wait", "device",
     *  "check", "recover" and "merge". Must outlive the trace
     *  (string literals at every call site). */
    const char* name = "";
    uint64_t start_ns = 0;     ///< steady-clock open time.
    uint64_t duration_ns = 0;  ///< close - open.
};

/** How a traced request's future resolved. */
enum class RequestOutcome : uint32_t {
    kCompleted,  ///< served; outputs delivered.
    kRejected,   ///< never enqueued (bad shape / backpressure).
    kCancelled,  ///< accepted, then shut down before a worker ran it.
    kShed,       ///< refused by admission control (serve/admission.h).
    kExpired,    ///< deadline passed before the device was reached.
};

/** Stable name for an outcome ("completed" / "rejected" /
 *  "cancelled" / "shed" / "expired"). */
const char* RequestOutcomeName(RequestOutcome outcome);

/** One request, end to end, as the serving engine saw it. */
struct RequestTrace {
    uint64_t trace_id = 0;    ///< process-unique, assigned at Submit.
    uint32_t shard = 0;       ///< shard that served (or rejected) it.
    RequestOutcome outcome = RequestOutcome::kCompleted;
    uint64_t submit_ns = 0;   ///< steady-clock Submit() time.
    uint64_t total_ns = 0;    ///< submit -> future resolution.
    uint64_t elements = 0;    ///< elements in the request.
    /** Requests coalesced into the invocation that served this one
     *  (1 = served alone). */
    uint32_t batch_requests = 1;
    uint64_t fixes = 0;       ///< recovered iterations in that invocation.
    /** Breaker position after that invocation (0 closed, 1 open,
     *  2 half-open). */
    uint32_t breaker_state = 0;
    /** The quality auditor sampled this request for ground-truth
     *  re-execution (obs/audit.h); audited misses join back to their
     *  span tree through this flag + trace_id. */
    bool audited = false;
    std::vector<RequestSpan> spans;
};

/** Tail-based sampling policy: which finished traces to keep. */
struct TailSamplingPolicy {
    /** Always keep rejected / cancelled outcomes. */
    bool keep_errors = true;
    /** Always keep traces whose invocation recovered elements. */
    bool keep_recovered = true;
    /** Always keep traces served under a non-closed breaker. */
    bool keep_breaker = true;
    /** Always keep traces with total_ns >= this bound (0 disables). */
    uint64_t latency_keep_ns = 0;
    /** Always keep audited traces, so every audit verdict can join
     *  back to a kept span tree. */
    bool keep_audited = true;
    /** Of the unflagged remainder keep one in N; 0 drops them all,
     *  1 keeps everything. */
    uint32_t sample_every = 16;
};

/**
 * Bounded ring of kept request traces. Record() applies the tail
 * policy; eviction drops the oldest kept trace. All methods are
 * thread-safe (shard workers record concurrently).
 */
class RequestTraceCollector {
  public:
    static constexpr size_t kDefaultCapacity = 4096;

    explicit RequestTraceCollector(size_t capacity = kDefaultCapacity);

    /** Replace the sampling policy (applies to future Record calls). */
    void Configure(const TailSamplingPolicy& policy);

    /** The active sampling policy. */
    TailSamplingPolicy Policy() const;

    /** Next process-unique trace id (monotonic from 1; 0 is "no
     *  trace"). Ids stay unique even while recording is disabled so
     *  results always carry one. */
    uint64_t NextTraceId();

    /** Resume keeping traces (collectors start enabled). */
    void Enable();

    /** Stop keeping traces; Record() only counts. */
    void Disable();

    /** True while keeping traces. */
    bool Enabled() const;

    /** Offer one finished trace; the tail policy decides its fate. */
    void Record(RequestTrace trace);

    /** Kept traces, oldest first. */
    std::vector<RequestTrace> Dump() const;

    /** Traces offered to Record() since construction / Clear(). */
    uint64_t TotalRecorded() const;

    /** Traces the tail policy discarded. */
    uint64_t Sampled() const;

    /** Kept traces evicted by capacity pressure. */
    uint64_t Evicted() const;

    /** Kept traces currently retained. */
    size_t Size() const;

    size_t Capacity() const { return capacity_; }

    /** Drop every kept trace and reset the counters (the trace-id
     *  sequence keeps advancing — ids are never reused). */
    void Clear();

    /** The process-wide collector the serving engine records into. */
    static RequestTraceCollector& Default();

  private:
    bool KeepLocked(const RequestTrace& trace);

    const size_t capacity_;
    std::atomic<uint64_t> next_trace_id_{1};
    std::atomic<bool> enabled_{true};
    mutable std::mutex mu_;
    TailSamplingPolicy policy_;
    std::vector<RequestTrace> ring_;  ///< circular storage.
    size_t head_ = 0;                 ///< next write slot when full.
    uint64_t total_recorded_ = 0;
    uint64_t sampled_out_ = 0;
    uint64_t evicted_ = 0;
    uint64_t unflagged_seen_ = 0;  ///< 1-in-N sampling counter.
};

/**
 * Render traces as JSONL: the run-metadata header of obs/export.h,
 * then one {"type":"reqtrace",...} object per trace with a nested
 * "spans" array.
 */
std::string RequestTracesToJsonl(const std::vector<RequestTrace>& traces);

/** One trace as a single JSON object (no trailing newline). */
std::string RequestTraceJson(const RequestTrace& trace);

/** Dump the default collector to @p path. False on I/O error. */
bool WriteRequestTraceFile(const std::string& path);

/**
 * Honor RUMBA_REQTRACE_OUT: when set, write the default collector's
 * kept traces there and return the path; otherwise (or on I/O
 * failure, after a warning) return "". The at-exit hook of
 * obs/export.h makes the final call.
 */
std::string ExportRequestTracesIfConfigured();

}  // namespace rumba::obs

#endif  // RUMBA_OBS_REQTRACE_H_
