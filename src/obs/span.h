#ifndef RUMBA_OBS_SPAN_H_
#define RUMBA_OBS_SPAN_H_

/**
 * @file
 * Timeline span tracing. Where obs/metrics.h answers "how much / how
 * fast overall", spans answer "what happened *when*": each Span is an
 * RAII interval on the steady clock, nested by construction order,
 * attributed to the recording thread. Spans land in a per-thread
 * buffer (one short uncontended mutex per record, no global lock on
 * the hot path) owned by a SpanCollector, and export as Chrome
 * trace-event JSON loadable in Perfetto / chrome://tracing — so the
 * overlapped CPU-recovery pipeline of the paper's Figure 8 is
 * directly visible as two lanes.
 *
 * Recording is off by default; setting RUMBA_TRACE_OUT=<file> enables
 * the default collector and arms an at-exit Chrome-trace dump (see
 * obs/export.h for the shared at-exit plumbing).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rumba::obs {

/** One completed span, as recorded by its closing thread. */
struct SpanRecord {
    std::string name;          ///< stage name (e.g. "npu.invoke").
    uint64_t start_ns = 0;     ///< steady-clock open time.
    uint64_t duration_ns = 0;  ///< close - open.
    uint32_t thread_id = 0;    ///< collector-assigned, 1-based.
    uint32_t depth = 0;        ///< nesting depth at open (0 = root).
};

/**
 * Owns the per-thread span buffers. Each thread registers a buffer on
 * first use (registry mutex held once per thread per collector);
 * recording afterwards touches only that thread's buffer. When a
 * buffer reaches capacity the newest spans are dropped (the trace
 * keeps its beginning) and counted.
 */
class SpanCollector {
  public:
    /** Opaque per-thread storage (defined in span.cc). */
    struct ThreadBuffer;

    /** Spans retained per recording thread. */
    static constexpr size_t kDefaultPerThreadCapacity = 1u << 18;

    explicit SpanCollector(
        size_t per_thread_capacity = kDefaultPerThreadCapacity);

    /** Start recording (collectors start disabled unless env-armed). */
    void Enable() { enabled_.store(true, std::memory_order_relaxed); }

    /** Stop recording; open Spans still close without recording. */
    void Disable() { enabled_.store(false, std::memory_order_relaxed); }

    /** True while recording. */
    bool
    Enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** All retained spans from every thread, sorted by start time. */
    std::vector<SpanRecord> Dump() const;

    /** Spans recorded (retained) across all threads. */
    uint64_t TotalRecorded() const;

    /** Spans dropped to per-thread capacity pressure. */
    uint64_t Dropped() const;

    /** Threads that have recorded into this collector. */
    size_t ThreadCount() const;

    /** Per-thread capacity this collector was built with. */
    size_t PerThreadCapacity() const { return per_thread_capacity_; }

    /** Drop every retained span (thread registrations survive). */
    void Clear();

    /**
     * The process-wide collector the runtime's spans record into.
     * Construction enables it iff RUMBA_TRACE_OUT names a file.
     */
    static SpanCollector& Default();

  private:
    friend class Span;

    /** This thread's buffer, registering it on first use. */
    ThreadBuffer* BufferForThisThread();

    const size_t per_thread_capacity_;
    const uint64_t collector_id_;  ///< key for thread-local caches.
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;  ///< guards buffers_ registration/iteration.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    uint32_t next_thread_id_ = 0;
};

/**
 * RAII timeline span: opens on construction, records on destruction.
 * @p name must outlive the span (string literals at every call site).
 * Construction on a disabled collector is a few relaxed loads and
 * records nothing.
 */
class Span {
  public:
    /** @param collector destination; nullptr selects Default(). */
    explicit Span(const char* name, SpanCollector* collector = nullptr);

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    ~Span();

  private:
    SpanCollector::ThreadBuffer* buffer_;  ///< nullptr = not recording.
    const char* name_;
    uint64_t start_ns_ = 0;
    uint32_t depth_ = 0;
};

/**
 * Render spans as a Chrome trace-event JSON document ("X" complete
 * events, microsecond timestamps relative to the earliest span) with
 * the run metadata of obs/export.h under "otherData". The result is
 * one valid JSON object, loadable in Perfetto / chrome://tracing.
 */
std::string ToChromeTrace(const std::vector<SpanRecord>& spans,
                          uint64_t dropped, size_t per_thread_capacity);

/**
 * Dump the default collector to @p path as Chrome trace JSON.
 * Returns false on I/O error.
 */
bool WriteChromeTraceFile(const std::string& path);

/**
 * Honor RUMBA_TRACE_OUT: when set, write the default collector's
 * spans there and return the path; otherwise (or on I/O failure,
 * after a warning) return "". The at-exit hook of obs/export.h makes
 * the final call.
 */
std::string ExportTraceIfConfigured();

}  // namespace rumba::obs

#endif  // RUMBA_OBS_SPAN_H_
