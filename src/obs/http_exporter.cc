#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/profiler.h"

namespace rumba::obs {

namespace {

/** "serve.submitted" -> "rumba_serve_submitted". */
std::string
SanitizeName(const std::string& name)
{
    std::string out = "rumba_";
    out.reserve(out.size() + name.size());
    for (char c : name)
        out.push_back(std::isalnum(static_cast<unsigned char>(c))
                          ? c
                          : '_');
    return out;
}

/** Prometheus sample value: shortest round-trippable decimal. */
std::string
PromNum(double v)
{
    if (!std::isfinite(v))
        return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Escape a label value (backslash, quote, newline). */
std::string
EscapeLabel(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

void
AppendHeader(std::string* out, const std::string& prom_name,
             const char* type)
{
    *out += "# HELP " + prom_name + " rumba metric\n";
    *out += "# TYPE " + prom_name + " ";
    *out += type;
    *out += "\n";
}

std::string
NameLabel(const std::string& dotted)
{
    return "{name=\"" + EscapeLabel(dotted) + "\"}";
}

}  // namespace

std::string
ToPrometheusText(const RegistrySnapshot& snapshot)
{
    std::string out;
    for (const CounterSnapshot& c : snapshot.counters) {
        const std::string prom = SanitizeName(c.name) + "_total";
        AppendHeader(&out, prom, "counter");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, c.value);
        out += prom + NameLabel(c.name) + " " + buf + "\n";
    }
    for (const DoubleCounterSnapshot& c : snapshot.dcounters) {
        const std::string prom = SanitizeName(c.name) + "_total";
        AppendHeader(&out, prom, "counter");
        out += prom + NameLabel(c.name) + " " + PromNum(c.value) + "\n";
    }
    for (const GaugeSnapshot& g : snapshot.gauges) {
        const std::string prom = SanitizeName(g.name);
        AppendHeader(&out, prom, "gauge");
        out += prom + NameLabel(g.name) + " " + PromNum(g.value) + "\n";
    }
    for (const HistogramSnapshot& h : snapshot.histograms) {
        const std::string prom = SanitizeName(h.name);
        const std::string label = EscapeLabel(h.name);
        AppendHeader(&out, prom, "histogram");
        uint64_t cumulative = 0;
        char buf[32];
        for (size_t b = 0; b < h.buckets.size(); ++b) {
            cumulative += h.buckets[b];
            const std::string le =
                b < h.bounds.size() ? PromNum(h.bounds[b]) : "+Inf";
            std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
            out += prom + "_bucket{name=\"" + label + "\",le=\"" + le +
                   "\"} " + buf + "\n";
        }
        out += prom + "_sum" + NameLabel(h.name) + " " + PromNum(h.sum) +
               "\n";
        std::snprintf(buf, sizeof(buf), "%" PRIu64, h.count);
        out += prom + "_count" + NameLabel(h.name) + " " + buf + "\n";
        // Exact extrema aren't expressible as histogram series; export
        // them as companion gauges so live dashboards keep the same
        // fidelity as the JSONL snapshots.
        AppendHeader(&out, prom + "_min", "gauge");
        out += prom + "_min" + NameLabel(h.name) + " " + PromNum(h.min) +
               "\n";
        AppendHeader(&out, prom + "_max", "gauge");
        out += prom + "_max" + NameLabel(h.name) + " " + PromNum(h.max) +
               "\n";
    }
    return out;
}

ObservabilityServer::~ObservabilityServer()
{
    Stop();
}

bool
ObservabilityServer::Start(uint16_t port)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (running_.load(std::memory_order_acquire)) {
        Warn("ObservabilityServer: already running on port %u",
             static_cast<unsigned>(Port()));
        return false;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        Warn("ObservabilityServer: socket() failed: %s",
             std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        Warn("ObservabilityServer: cannot bind 127.0.0.1:%u: %s",
             static_cast<unsigned>(port), std::strerror(errno));
        ::close(fd);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0)
        port = ntohs(bound.sin_port);
    listen_fd_ = fd;
    port_.store(port, std::memory_order_release);
    served_.store(0, std::memory_order_relaxed);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread(&ObservabilityServer::ServeLoop, this, fd);
    Inform("ObservabilityServer: serving /metrics /healthz /statusz "
           "/buildz /profilez on "
           "127.0.0.1:%u",
           static_cast<unsigned>(port));
    return true;
}

void
ObservabilityServer::Stop()
{
    // Flip state and close the listener under the lock, but join
    // OUTSIDE it: the serve thread may be mid-/statusz and must be
    // able to finish its response (StatusBody takes provider_mu_, and
    // a concurrent Start/Stop would take mu_) without deadlocking
    // against us.
    std::thread to_join;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_.load(std::memory_order_acquire))
            return;
        running_.store(false, std::memory_order_release);
        // Unblock accept(): shutdown() makes the blocked accept
        // return on Linux; close() then releases the descriptor.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
        port_.store(0, std::memory_order_release);
        to_join = std::move(thread_);
    }
    if (to_join.joinable())
        to_join.join();
}

void
ObservabilityServer::SetStatusProvider(
    std::function<std::string()> provider, const void* owner)
{
    std::lock_guard<std::mutex> lock(provider_mu_);
    provider_ = std::move(provider);
    provider_owner_ = owner;
}

void
ObservabilityServer::ClearStatusProvider(const void* owner)
{
    // Owner-checked: if someone else installed a provider after us,
    // leave theirs alone. Taking provider_mu_ also waits out any
    // in-flight invocation of our provider, so on return the caller
    // may safely destroy whatever the provider captured.
    std::lock_guard<std::mutex> lock(provider_mu_);
    if (provider_owner_ != owner)
        return;
    provider_ = nullptr;
    provider_owner_ = nullptr;
}

std::string
ObservabilityServer::StatusBody()
{
    // Invoke under provider_mu_ so SetStatusProvider/
    // ClearStatusProvider synchronize with in-flight renders — the
    // provider typically captures a raw engine pointer whose lifetime
    // ends right after the clear.
    std::lock_guard<std::mutex> lock(provider_mu_);
    if (provider_)
        return provider_();
    return "{\"healthy\":true}\n";
}

void
ObservabilityServer::ServeLoop(int listen_fd)
{
    while (running_.load(std::memory_order_acquire)) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break;  // Stop() shut the listener down.
        }
        HandleConnection(fd);
        ::close(fd);
    }
}

void
ObservabilityServer::HandleConnection(int fd)
{
    // Read until the end of the request head (we ignore bodies — every
    // route is a GET).
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos &&
           request.size() < 16384) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        request.append(buf, static_cast<size_t>(n));
    }
    const size_t line_end = request.find('\n');
    if (line_end == std::string::npos)
        return;
    // Request line: METHOD SP PATH SP VERSION.
    const size_t sp1 = request.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : request.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        sp2 > line_end)
        return;
    std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);

    int status = 200;
    const char* status_text = "OK";
    const char* content_type = "text/plain; charset=utf-8";
    std::string body;
    if (path == "/metrics") {
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = ToPrometheusText(Registry::Default().Snapshot());
    } else if (path == "/healthz") {
        body = "ok\n";
    } else if (path == "/statusz") {
        content_type = "application/json; charset=utf-8";
        body = StatusBody();
    } else if (path == "/buildz") {
        content_type = "application/json; charset=utf-8";
        body = BuildInfoJson() + "\n";
    } else if (path == "/profilez") {
        content_type = "application/json; charset=utf-8";
        body = ProfilezJson() + "\n";
    } else {
        status = 404;
        status_text = "Not Found";
        body = "not found\n";
    }
    char head[256];
    std::snprintf(head, sizeof(head),
                  "HTTP/1.0 %d %s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  status, status_text, content_type, body.size());
    std::string response = head;
    response += body;
    size_t sent = 0;
    while (sent < response.size()) {
        const ssize_t n = ::send(fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<size_t>(n);
    }
    served_.fetch_add(1, std::memory_order_relaxed);
}

ObservabilityServer&
ObservabilityServer::Default()
{
    static ObservabilityServer server;
    return server;
}

bool
ObservabilityServer::StartFromEnv()
{
    ObservabilityServer& server = Default();
    if (server.Running())
        return true;
    const char* env = std::getenv("RUMBA_METRICS_PORT");
    if (env == nullptr || env[0] == '\0')
        return false;
    char* end = nullptr;
    const long port = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || port < 0 || port > 65535) {
        Warn("RUMBA_METRICS_PORT: invalid port '%s'", env);
        return false;
    }
    return server.Start(static_cast<uint16_t>(port));
}

bool
HttpGet(uint16_t port, const std::string& path, std::string* body,
        int* status)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    const std::string request = "GET " + path +
                                " HTTP/1.0\r\n"
                                "Host: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);
    if (response.compare(0, 5, "HTTP/") != 0)
        return false;
    const size_t sp = response.find(' ');
    if (sp == std::string::npos)
        return false;
    if (status != nullptr)
        *status = std::atoi(response.c_str() + sp + 1);
    size_t head_end = response.find("\r\n\r\n");
    size_t skip = 4;
    if (head_end == std::string::npos) {
        head_end = response.find("\n\n");
        skip = 2;
    }
    if (body != nullptr) {
        *body = head_end == std::string::npos
                    ? ""
                    : response.substr(head_end + skip);
    }
    return true;
}

}  // namespace rumba::obs
