#include "obs/trace.h"

#include "common/logging.h"

namespace rumba::obs {

TraceRing::TraceRing(size_t capacity) : capacity_(capacity)
{
    RUMBA_CHECK(capacity > 0);
    ring_.reserve(capacity);
}

void
TraceRing::Start()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = true;
}

void
TraceRing::Stop()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = false;
}

bool
TraceRing::Enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
}

void
TraceRing::Record(const TraceEvent& event)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    TraceEvent stamped = event;
    stamped.sequence = next_sequence_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(stamped);
    } else {
        ring_[head_] = stamped;
        head_ = (head_ + 1) % capacity_;
    }
}

std::vector<TraceEvent>
TraceRing::Dump() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> events;
    events.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        events.push_back(ring_[(head_ + i) % ring_.size()]);
    return events;
}

uint64_t
TraceRing::TotalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_sequence_;
}

uint64_t
TraceRing::Dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_sequence_ - ring_.size();
}

size_t
TraceRing::Size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

void
TraceRing::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    head_ = 0;
    next_sequence_ = 0;
}

TraceRing&
TraceRing::Default()
{
    static TraceRing ring(4096);
    return ring;
}

}  // namespace rumba::obs
