#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace rumba::obs {

size_t
ParseTraceRingCapacity(const char* value)
{
    if (value == nullptr || value[0] == '\0')
        return TraceRing::kDefaultRingCapacity;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value)
        return TraceRing::kDefaultRingCapacity;
    return std::clamp(static_cast<size_t>(parsed),
                      TraceRing::kMinRingCapacity,
                      TraceRing::kMaxRingCapacity);
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity)
{
    RUMBA_CHECK(capacity > 0);
    ring_.reserve(capacity);
}

void
TraceRing::Start()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = true;
}

void
TraceRing::Stop()
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = false;
}

bool
TraceRing::Enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
}

void
TraceRing::Record(const TraceEvent& event)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_)
        return;
    TraceEvent stamped = event;
    stamped.sequence = next_sequence_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(stamped);
    } else {
        ring_[head_] = stamped;
        head_ = (head_ + 1) % capacity_;
    }
}

bool
TraceRing::Latest(TraceEvent* event) const
{
    RUMBA_CHECK(event != nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty())
        return false;
    // The newest slot is just behind the next write position.
    const size_t newest = ring_.size() < capacity_
                              ? ring_.size() - 1
                              : (head_ + capacity_ - 1) % capacity_;
    *event = ring_[newest];
    return true;
}

std::vector<TraceEvent>
TraceRing::Dump() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> events;
    events.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        events.push_back(ring_[(head_ + i) % ring_.size()]);
    return events;
}

uint64_t
TraceRing::TotalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_sequence_;
}

uint64_t
TraceRing::Dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_sequence_ - ring_.size();
}

size_t
TraceRing::Size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

void
TraceRing::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    head_ = 0;
    next_sequence_ = 0;
}

TraceRing&
TraceRing::Default()
{
    static TraceRing ring(
        ParseTraceRingCapacity(std::getenv("RUMBA_TRACE_RING_CAPACITY")));
    return ring;
}

}  // namespace rumba::obs
