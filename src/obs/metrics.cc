#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/export.h"

namespace rumba::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    RUMBA_CHECK(!bounds_.empty());
    RUMBA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void
Histogram::Observe(double value)
{
    const size_t bucket = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    std::lock_guard<std::mutex> lock(mu_);
    ++counts_[bucket];
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

uint64_t
Histogram::Count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

double
Histogram::Sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
}

double
Histogram::Min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return min_;
}

double
Histogram::Max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
}

double
Histogram::Quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return QuantileLocked(q);
}

double
Histogram::QuantileLocked(double q) const
{
    RUMBA_CHECK(q >= 0.0 && q <= 1.0);
    if (count_ == 0)
        return 0.0;
    const double target = q * static_cast<double>(count_);
    double cumulative = 0.0;
    for (size_t b = 0; b < counts_.size(); ++b) {
        if (counts_[b] == 0)
            continue;
        const double next = cumulative + static_cast<double>(counts_[b]);
        if (next >= target) {
            // Interpolate within this bucket's edges, tightened to the
            // observed range (see the estimator note in metrics.h):
            // without the tightening a narrow distribution inside one
            // wide bucket reports quantiles rounded up toward the
            // bucket bound.
            const double lo =
                std::max(b == 0 ? min_ : bounds_[b - 1], min_);
            const double hi =
                std::min(b < bounds_.size() ? bounds_[b] : max_, max_);
            const double t =
                (target - cumulative) / static_cast<double>(counts_[b]);
            const double v = hi <= lo ? lo : lo + t * (hi - lo);
            return std::clamp(v, min_, max_);
        }
        cumulative = next;
    }
    return max_;
}

HistogramSnapshot
Histogram::Snapshot(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    snap.p50 = QuantileLocked(0.50);
    snap.p90 = QuantileLocked(0.90);
    snap.p99 = QuantileLocked(0.99);
    snap.bounds = bounds_;
    snap.buckets = counts_;
    return snap;
}

std::vector<uint64_t>
Histogram::BucketCounts() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
}

void
Histogram::Reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

std::vector<double>
Histogram::ExponentialBuckets(double start, double factor, size_t count)
{
    RUMBA_CHECK(start > 0.0 && factor > 1.0 && count > 0);
    std::vector<double> bounds;
    bounds.reserve(count);
    double bound = start;
    for (size_t i = 0; i < count; ++i) {
        bounds.push_back(bound);
        bound *= factor;
    }
    return bounds;
}

std::vector<double>
Histogram::LinearBuckets(double start, double width, size_t count)
{
    RUMBA_CHECK(width > 0.0 && count > 0);
    std::vector<double> bounds;
    bounds.reserve(count);
    for (size_t i = 0; i < count; ++i)
        bounds.push_back(start + width * static_cast<double>(i));
    return bounds;
}

std::vector<double>
Histogram::DefaultLatencyBounds()
{
    return ExponentialBuckets(64.0, 2.0, 26);
}

Counter*
Registry::GetCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return slot.get();
}

DoubleCounter*
Registry::GetDoubleCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = dcounters_[name];
    if (slot == nullptr)
        slot = std::make_unique<DoubleCounter>();
    return slot.get();
}

Gauge*
Registry::GetGauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return slot.get();
}

Histogram*
Registry::GetHistogram(const std::string& name,
                       std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Histogram>(
            bounds.empty() ? Histogram::DefaultLatencyBounds()
                           : std::move(bounds));
    }
    return slot.get();
}

RegistrySnapshot
Registry::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    RegistrySnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_)
        snap.counters.push_back({name, counter->Value()});
    snap.dcounters.reserve(dcounters_.size());
    for (const auto& [name, dcounter] : dcounters_)
        snap.dcounters.push_back({name, dcounter->Value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_)
        snap.gauges.push_back({name, gauge->Value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_)
        snap.histograms.push_back(histogram->Snapshot(name));
    return snap;
}

void
Registry::Reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_)
        counter->Reset();
    for (auto& [name, dcounter] : dcounters_)
        dcounter->Reset();
    for (auto& [name, gauge] : gauges_)
        gauge->Reset();
    for (auto& [name, histogram] : histograms_)
        histogram->Reset();
}

Registry&
Registry::Default()
{
    static Registry registry;
    InstallAtExitExport();
    return registry;
}

}  // namespace rumba::obs
