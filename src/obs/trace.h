#ifndef RUMBA_OBS_TRACE_H_
#define RUMBA_OBS_TRACE_H_

/**
 * @file
 * Bounded invocation tracing. The runtime records one TraceEvent per
 * ProcessInvocation() into a fixed-capacity ring buffer: the threshold
 * used, how many checks fired, how many elements were fixed, queue
 * backpressure stalls, tuner movement, and the drift verdict. The ring
 * keeps the most recent events, can be started/stopped at runtime, and
 * dumps oldest-first for exporters and tests.
 */

#include <cstdint>
#include <mutex>
#include <vector>

namespace rumba::obs {

/** One accelerator invocation as the online loop saw it. */
struct TraceEvent {
    uint64_t sequence = 0;     ///< global record order (assigned).
    uint64_t invocation = 0;   ///< runtime's invocation index.
    uint64_t elements = 0;     ///< elements in the batch.
    double threshold = 0.0;    ///< detection threshold this round.
    uint64_t fires = 0;        ///< checks that fired.
    uint64_t fixes = 0;        ///< iterations re-executed.
    uint64_t queue_full_stalls = 0;  ///< backpressure drains forced.
    uint64_t queue_drops = 0;  ///< recovery entries dropped (overflow).
    uint64_t non_finite = 0;   ///< NaN/Inf accelerator outputs seen.
    uint64_t exact_elements = 0;  ///< elements the breaker kept exact.
    uint64_t tuner_adjustments = 0;  ///< threshold moves this round.
    double output_error_pct = 0.0;   ///< verified residual error.
    double estimated_error_pct = 0.0;  ///< detector's own estimate.
    bool drift = false;        ///< drift alarm raised this round.
    /** Circuit-breaker position after this invocation (core/breaker.h
     *  encoding: 0 closed, 1 open, 2 half-open). */
    uint32_t breaker_state = 0;
};

/** Fixed-capacity ring of the most recent trace events. */
class TraceRing {
  public:
    /** @param capacity events retained (oldest evicted first). */
    explicit TraceRing(size_t capacity = 1024);

    /** Resume recording (rings start enabled). */
    void Start();

    /** Stop recording; Record() becomes a no-op. */
    void Stop();

    /** True while recording. */
    bool Enabled() const;

    /** Append one event (assigns TraceEvent::sequence). */
    void Record(const TraceEvent& event);

    /** Retained events, oldest first. */
    std::vector<TraceEvent> Dump() const;

    /**
     * Copy the most recently recorded event into @p event. Returns
     * false (leaving @p event untouched) when nothing was recorded.
     */
    bool Latest(TraceEvent* event) const;

    /** Events ever recorded (including evicted ones). */
    uint64_t TotalRecorded() const;

    /** Events evicted by capacity pressure. */
    uint64_t Dropped() const;

    /** Events currently retained. */
    size_t Size() const;

    /** Capacity the ring was built with. */
    size_t Capacity() const { return capacity_; }

    /** Drop every retained event and reset the sequence counter. */
    void Clear();

    /**
     * The process-wide ring the Rumba runtime records into. Its
     * capacity comes from RUMBA_TRACE_RING_CAPACITY (parsed once via
     * ParseTraceRingCapacity); exports report the effective value in
     * the run-metadata header.
     */
    static TraceRing& Default();

    /** Capacity the default ring is built with when the env is unset. */
    static constexpr size_t kDefaultRingCapacity = 4096;

    /** Clamp range for RUMBA_TRACE_RING_CAPACITY. */
    static constexpr size_t kMinRingCapacity = 16;
    static constexpr size_t kMaxRingCapacity = 1u << 20;

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> ring_;  ///< circular storage.
    size_t head_ = 0;               ///< next write slot when full.
    uint64_t next_sequence_ = 0;
    bool enabled_ = true;
};

/**
 * Parse a RUMBA_TRACE_RING_CAPACITY value: nullptr / empty / garbage
 * select TraceRing::kDefaultRingCapacity; numbers are clamped to
 * [kMinRingCapacity, kMaxRingCapacity].
 */
size_t ParseTraceRingCapacity(const char* value);

}  // namespace rumba::obs

#endif  // RUMBA_OBS_TRACE_H_
