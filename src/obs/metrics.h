#ifndef RUMBA_OBS_METRICS_H_
#define RUMBA_OBS_METRICS_H_

/**
 * @file
 * Runtime telemetry: a process-wide metrics registry of named
 * counters, gauges, and fixed-bucket histograms. The online
 * quality-management loop (runtime, detector, recovery, tuner, drift
 * monitor, accelerator) registers its instruments here; exporters
 * (obs/export.h) snapshot the registry into JSONL/CSV/tables.
 *
 * Concurrency: counters and gauges are lock-free atomics; histograms
 * take a short uncontended mutex per observation. Registration takes
 * a registry-wide mutex and returns pointers that stay valid for the
 * registry's lifetime, so hot paths pay only the increment.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rumba::obs {

/** A monotonically increasing event count. */
class Counter {
  public:
    /** Add @p n events. */
    void
    Increment(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current count. */
    uint64_t
    Value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the count (tests / between runs). */
    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * A monotonically increasing fractional total (e.g. CPU seconds).
 * Same contract as Counter but accumulates doubles, for quantities
 * that grow by sub-integer amounts per event.
 */
class DoubleCounter {
  public:
    /** Add @p delta (callers only pass non-negative deltas). */
    void
    Add(double delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Current total. */
    double
    Value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Zero the total (tests / between runs). */
    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** A last-value-wins instantaneous measurement. */
class Gauge {
  public:
    /** Record the current value. */
    void
    Set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    /** Most recently set value. */
    double
    Value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. */
    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time view of one histogram. */
struct HistogramSnapshot {
    std::string name;
    uint64_t count = 0;  ///< observations recorded.
    double sum = 0.0;    ///< sum of observed values.
    double min = 0.0;    ///< smallest observation (0 when empty).
    double max = 0.0;    ///< largest observation (0 when empty).
    double p50 = 0.0;    ///< median estimate.
    double p90 = 0.0;    ///< 90th-percentile estimate.
    double p99 = 0.0;    ///< 99th-percentile estimate.
    /** Bucket upper bounds and per-bucket counts (bounds.size() + 1
     *  entries, the last being the overflow bucket). Carried so the
     *  Prometheus exposition (obs/http_exporter.h) can render
     *  cumulative `le` buckets from the same consistent view. */
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
};

/**
 * Fixed-bucket histogram with quantile queries. Buckets are defined
 * by ascending upper bounds; values above the last bound land in an
 * overflow bucket.
 *
 * Quantile estimator: the bucket holding the target rank is found by
 * a cumulative scan, then the estimate interpolates linearly within
 * that bucket — but over the bucket's edges *tightened to the
 * observed range*: lo = max(bucket lower bound, observed min),
 * hi = min(bucket upper bound, observed max). Without the
 * tightening, a distribution occupying a narrow slice of one wide
 * bucket reports quantiles spread across the whole bucket (p99 rounds
 * up to the bucket bound; a median of values uniform in [15, 20]
 * under a (10, 100] bucket reads as ~55). With it, the same query
 * reads ~17.5. The result is finally clamped to [min, max], so
 * p50 <= p90 <= p99 always holds and single-valued histograms report
 * that value exactly. The estimate is exact when observations are
 * uniform within each bucket's occupied slice and never off by more
 * than one bucket's tightened width.
 */
class Histogram {
  public:
    /** @param bounds ascending bucket upper bounds (non-empty). */
    explicit Histogram(std::vector<double> bounds);

    /** Record one observation. */
    void Observe(double value);

    /** Observations recorded. */
    uint64_t Count() const;

    /** Sum of all observations. */
    double Sum() const;

    /** Smallest observation (0 when empty). */
    double Min() const;

    /** Largest observation (0 when empty). */
    double Max() const;

    /** Estimated value at quantile @p q in [0, 1]. */
    double Quantile(double q) const;

    /** Consistent point-in-time view (one lock for all fields). */
    HistogramSnapshot Snapshot(const std::string& name) const;

    /** Bucket upper bounds this histogram was built with. */
    const std::vector<double>& Bounds() const { return bounds_; }

    /** Per-bucket counts (bounds plus one overflow bucket). */
    std::vector<uint64_t> BucketCounts() const;

    /** Drop all observations. */
    void Reset();

    /** @p count bounds starting at @p start, multiplied by @p factor. */
    static std::vector<double> ExponentialBuckets(double start,
                                                  double factor,
                                                  size_t count);

    /** @p count bounds starting at @p start, stepped by @p width. */
    static std::vector<double> LinearBuckets(double start, double width,
                                             size_t count);

    /** Default exponential nanosecond buckets (64ns .. ~4s). */
    static std::vector<double> DefaultLatencyBounds();

  private:
    double QuantileLocked(double q) const;

    std::vector<double> bounds_;
    mutable std::mutex mu_;
    std::vector<uint64_t> counts_;  ///< bounds_.size() + 1 (overflow).
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Point-in-time view of one counter. */
struct CounterSnapshot {
    std::string name;
    uint64_t value = 0;
};

/** Point-in-time view of one fractional counter. */
struct DoubleCounterSnapshot {
    std::string name;
    double value = 0.0;
};

/** Point-in-time view of one gauge. */
struct GaugeSnapshot {
    std::string name;
    double value = 0.0;
};

/** Point-in-time view of a whole registry, sorted by name. */
struct RegistrySnapshot {
    std::vector<CounterSnapshot> counters;
    std::vector<DoubleCounterSnapshot> dcounters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;
};

/**
 * Named instrument registry. Get*() registers on first use and
 * returns the same instrument for the same name thereafter; the
 * returned pointers remain valid for the registry's lifetime.
 */
class Registry {
  public:
    /** Find or create the counter named @p name. */
    Counter* GetCounter(const std::string& name);

    /** Find or create the fractional counter named @p name. */
    DoubleCounter* GetDoubleCounter(const std::string& name);

    /** Find or create the gauge named @p name. */
    Gauge* GetGauge(const std::string& name);

    /**
     * Find or create the histogram named @p name. @p bounds is used
     * only on first registration (empty selects
     * Histogram::DefaultLatencyBounds()).
     */
    Histogram* GetHistogram(const std::string& name,
                            std::vector<double> bounds = {});

    /** Consistent point-in-time view of every instrument. */
    RegistrySnapshot Snapshot() const;

    /** Zero every instrument (names stay registered). */
    void Reset();

    /**
     * The process-wide registry the Rumba runtime instruments. First
     * use also arms the RUMBA_METRICS_OUT at-exit exporter (see
     * obs/export.h).
     */
    static Registry& Default();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<DoubleCounter>> dcounters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rumba::obs

#endif  // RUMBA_OBS_METRICS_H_
