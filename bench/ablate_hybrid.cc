/**
 * @file
 * Extension ablation: hybridErrors — offline best-of(linear, tree)
 * checker selection. The paper observes (Section 5.1) that which
 * predictor wins is benchmark dependent; since both are trained
 * offline anyway, the trainer can hold out a validation slice and
 * ship the better one per application. This bench compares fixes /
 * false positives / energy of linear, tree and hybrid at the 90%
 * target quality, and reports which checker hybrid selected.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "predict/hybrid.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    Table table({"Application", "Hybrid picked", "linear fix %",
                 "tree fix %", "hybrid fix %", "hybrid FP %",
                 "hybrid energy saving"});
    std::vector<double> lin_fixes, tree_fixes, hyb_fixes;
    for (const auto& exp : experiments) {
        const auto lin = exp->ReportAtTargetError(
            core::Scheme::kLinear, benchutil::kTargetErrorPct);
        const auto tree = exp->ReportAtTargetError(
            core::Scheme::kTree, benchutil::kTargetErrorPct);
        const auto hyb = exp->ReportAtTargetError(
            core::Scheme::kHybrid, benchutil::kTargetErrorPct);

        // Which checker did the offline selector keep?
        auto predictor =
            exp->GetPipeline().TrainPredictor(core::Scheme::kHybrid);
        const auto* hybrid =
            dynamic_cast<const predict::HybridErrorPredictor*>(
                predictor.get());
        const std::string picked =
            hybrid != nullptr ? hybrid->SelectedName() : "?";

        lin_fixes.push_back(100.0 * lin.fix_fraction);
        tree_fixes.push_back(100.0 * tree.fix_fraction);
        hyb_fixes.push_back(100.0 * hyb.fix_fraction);
        table.AddRow({exp->Bench().Info().name, picked,
                      Table::Num(100.0 * lin.fix_fraction, 2),
                      Table::Num(100.0 * tree.fix_fraction, 2),
                      Table::Num(100.0 * hyb.fix_fraction, 2),
                      Table::Num(hyb.false_positive_pct, 2),
                      Table::Num(hyb.costs.EnergySaving(), 2)});
    }
    benchutil::Emit(table,
                    "Extension: hybridErrors (offline best-of selection) "
                    "at 90% target output quality",
                    csv_dir, "ablate_hybrid");

    std::printf("\nAverages — fixes to reach 90%% quality: linear "
                "%.2f%%, tree %.2f%%, hybrid %.2f%%.\nHybrid never does "
                "worse than the better of its candidates (up to "
                "validation noise)\nand costs nothing at runtime: the "
                "shipped hardware is one of the paper's checkers.\n",
                benchutil::Mean(lin_fixes), benchutil::Mean(tree_fixes),
                benchutil::Mean(hyb_fixes));
    return 0;
}
