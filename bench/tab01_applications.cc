/**
 * @file
 * Regenerates Table 1: the seven applications, their domains,
 * train/test data, the network topologies used by Rumba and by the
 * unchecked NPU, and the application-specific quality metric —
 * augmented with the *measured* unchecked output errors of both
 * accelerator configurations on this reproduction.
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    Table table({"Application", "Domain", "Train Data", "Test Data",
                 "NN Topology (Rumba)", "NN Topology (NPU)",
                 "Evaluation Metric", "Unchecked Err (Rumba) %",
                 "Unchecked Err (NPU) %", "Elements"});
    for (const auto& exp : experiments) {
        const auto& info = exp->Bench().Info();
        table.AddRow({
            info.name,
            info.domain,
            info.train_desc,
            info.test_desc,
            info.rumba_topology.ToString(),
            info.npu_topology.ToString(),
            info.metric,
            Table::Num(exp->UncheckedErrorPct(), 2),
            Table::Num(exp->NpuUncheckedErrorPct(), 2),
            Table::Int(static_cast<long>(exp->NumElements())),
        });
    }
    benchutil::Emit(table, "Table 1: Applications and their inputs",
                    csv_dir, "tab01_applications");

    std::printf("\nNote: Rumba's topology is never larger than the "
                "unchecked NPU's;\nits error detection lets it ship the "
                "smaller network and fix the residue.\n");
    return 0;
}
