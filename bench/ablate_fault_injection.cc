/**
 * @file
 * Fault-injection ablation. The paper's recovery mechanism descends
 * from transient-fault re-execution (Section 6 cites Relax/Encore);
 * this bench asks whether Rumba's checkers would also catch *hardware*
 * faults in the accelerator, not just model error. We corrupt a
 * fraction of accelerator outputs with large transient errors
 * (simulating datapath upsets) and measure each checker's detection
 * recall.
 *
 * Expected split: input-based checkers (linear/tree) predict the
 * *model's* error from the inputs — they are blind to faults that are
 * independent of the input. The output-based EMA watches the output
 * stream itself and catches exactly these outliers. The paper's design
 * quietly spans both failure classes across its checker family.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "common/random.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const double kFaultRate = 0.02;    // 2% of invocations upset.
    const double kFaultMagnitude = 5.0;  // multiple of output scale.

    Table table({"Application", "Scheme", "Fault recall %",
                 "Model-error recall %", "Fix budget %"});
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());
    for (const auto& exp : experiments) {
        const auto& bench = exp->Bench();
        const auto& pipeline = exp->GetPipeline();
        const auto& inputs = pipeline.TestInputs();
        const size_t n = inputs.size();

        // Corrupt a random subset of the accelerator's outputs.
        Rng rng(0xFA17 + n);
        npu::Npu accel = pipeline.MakeAccelerator(true);
        auto outputs = pipeline.RunAccelerator(&accel, inputs);
        std::vector<char> faulted(n, 0);
        const auto exact = bench.RunExactBatch(inputs);
        double out_scale = 0.0;
        for (size_t i = 0; i < n; ++i)
            for (double v : exact[i])
                out_scale = std::max(out_scale, std::fabs(v));
        for (size_t i = 0; i < n; ++i) {
            if (!rng.Chance(kFaultRate))
                continue;
            faulted[i] = 1;
            const size_t o = static_cast<size_t>(
                rng.Below(outputs[i].size()));
            outputs[i][o] += (rng.Chance(0.5) ? 1.0 : -1.0) *
                             kFaultMagnitude * out_scale;
        }

        // Score each checker on the corrupted stream; budget = the
        // fraction the 90%-TOQ operating point would fix anyway.
        for (core::Scheme s :
             {core::Scheme::kEma, core::Scheme::kLinear,
              core::Scheme::kTree}) {
            auto predictor = pipeline.TrainPredictor(s);
            predictor->Reset();
            std::vector<double> scores(n);
            for (size_t i = 0; i < n; ++i) {
                scores[i] = predictor->PredictError(
                    pipeline.NormalizeInput(inputs[i]), outputs[i]);
            }
            const auto base_report = exp->ReportAtTargetError(
                s, benchutil::kTargetErrorPct);
            const double budget =
                std::max(0.02, base_report.fix_fraction);
            // Fire the top `budget` fraction by score.
            std::vector<double> sorted = scores;
            const size_t k = static_cast<size_t>(
                budget * static_cast<double>(n));
            std::nth_element(sorted.begin(),
                             sorted.begin() + static_cast<long>(k),
                             sorted.end(), std::greater<double>());
            const double threshold = sorted[k];

            size_t faults = 0, caught_faults = 0;
            size_t model_large = 0, caught_model = 0;
            for (size_t i = 0; i < n; ++i) {
                const bool fired = scores[i] >= threshold;
                if (faulted[i]) {
                    ++faults;
                    caught_faults += fired;
                } else if (exp->TrueErrors()[i] > 0.2) {
                    ++model_large;
                    caught_model += fired;
                }
            }
            auto recall = [](size_t caught, size_t total) {
                return total == 0 ? 0.0
                                  : 100.0 * static_cast<double>(caught) /
                                        static_cast<double>(total);
            };
            table.AddRow({bench.Info().name, core::SchemeName(s),
                          Table::Num(recall(caught_faults, faults), 1),
                          Table::Num(recall(caught_model, model_large),
                                     1),
                          Table::Num(100.0 * budget, 1)});
        }
    }
    benchutil::Emit(table,
                    "Fault injection: 2% transient output upsets — "
                    "detection recall per checker",
                    csv_dir, "ablate_fault_injection");

    std::printf("\nOutput-based EMA catches input-independent hardware "
                "faults that input-based\ncheckers cannot see; "
                "input-based checkers dominate on the model's own "
                "errors.\nA deployment wanting both coverage classes "
                "would pair one of each.\n");
    return 0;
}
