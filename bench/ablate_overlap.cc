/**
 * @file
 * Ablation of the pipelined-recovery assumption (Section 3.3 /
 * Figure 8). The paper notes the CPU can keep up with the accelerator
 * "provided the elements to recompute are uniformly distributed".
 * This bench runs the exact discrete-event overlap simulation for
 * (a) synthetic fire patterns — uniform vs clustered bursts — across
 * fix rates and recovery-queue depths, and (b) the *real* fire
 * pattern of the treeErrors detector at the 90% target quality,
 * checking how close reality is to the fluid-limit analytical model.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/overlap_sim.h"
#include "sim/cpu_model.h"

using namespace rumba;

namespace {

std::vector<char>
UniformMask(size_t n, double rate)
{
    std::vector<char> mask(n, 0);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        acc += rate;
        if (acc >= 1.0) {
            mask[i] = 1;
            acc -= 1.0;
        }
    }
    return mask;
}

std::vector<char>
ClusteredMask(size_t n, double rate, size_t burst, uint64_t seed)
{
    // Same average rate, but fires arrive in bursts of @p burst.
    std::vector<char> mask(n, 0);
    Rng rng(seed);
    const size_t total = static_cast<size_t>(rate * n);
    size_t placed = 0;
    while (placed < total) {
        const size_t start = static_cast<size_t>(rng.Below(n));
        for (size_t k = 0; k < burst && placed < total; ++k) {
            const size_t idx = (start + k) % n;
            if (!mask[idx]) {
                mask[idx] = 1;
                ++placed;
            }
        }
    }
    return mask;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const size_t kN = 20000;

    // (a) Synthetic patterns. Accelerator 3x faster than a fix: the
    // fluid limit sustains up to a 33% fix rate with zero slowdown.
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 20;
    cfg.cpu_cycles_per_fix = 60;

    Table table({"Fix rate %", "Pattern", "Queue", "Stall %",
                 "CPU util %", "Slowdown vs fluid"});
    for (double rate : {0.10, 0.25, 0.33, 0.45}) {
        const double fluid_cycles = std::max(
            static_cast<double>(kN) * 20.0,
            rate * static_cast<double>(kN) * 60.0);
        for (size_t queue : {4ul, 16ul, 64ul, 512ul}) {
            cfg.queue_capacity = queue;
            struct Case {
                const char* name;
                std::vector<char> mask;
            };
            const Case cases[] = {
                {"uniform", UniformMask(kN, rate)},
                {"bursts of 64",
                 ClusteredMask(kN, rate, 64, 0xC1A5)},
            };
            for (const auto& c : cases) {
                const auto res = core::SimulateOverlap(c.mask, cfg);
                table.AddRow(
                    {Table::Num(100.0 * rate, 0), c.name,
                     Table::Int(static_cast<long>(queue)),
                     Table::Num(100.0 * res.StallFraction(), 2),
                     Table::Num(100.0 * res.CpuUtilization(), 1),
                     Table::Num(static_cast<double>(res.total_cycles) /
                                    fluid_cycles,
                                3)});
            }
        }
    }
    benchutil::Emit(table,
                    "Section 3.3 ablation: exact pipelined-recovery "
                    "simulation vs the fluid limit",
                    csv_dir, "ablate_overlap_synthetic");

    // (b) The real detector's fire pattern.
    const auto exp =
        benchutil::Prepare("inversek2j", benchutil::PaperConfig());
    const auto fixes = exp->FixSetForTargetError(
        core::Scheme::kTree, benchutil::kTargetErrorPct);
    core::OverlapConfig real_cfg;
    real_cfg.accel_cycles_per_element = exp->RumbaNpuCycles();
    // CPU fix cost in accelerator-clock cycles.
    sim::CpuModel cpu(exp->Config().core);
    real_cfg.cpu_cycles_per_fix = static_cast<uint64_t>(
        cpu.Nanoseconds(exp->KernelOps()) *
        exp->Config().pipeline.npu.frequency_ghz);

    Table real({"Queue", "Stall %", "CPU util %", "Max queue depth"});
    for (size_t queue : {4ul, 16ul, 64ul, 512ul}) {
        real_cfg.queue_capacity = queue;
        const auto res = core::SimulateOverlap(fixes, real_cfg);
        real.AddRow({Table::Int(static_cast<long>(queue)),
                     Table::Num(100.0 * res.StallFraction(), 2),
                     Table::Num(100.0 * res.CpuUtilization(), 1),
                     Table::Int(static_cast<long>(
                         res.max_queue_depth))});
    }
    benchutil::Emit(real,
                    "Real treeErrors fire pattern (inversek2j, 90% "
                    "TOQ) under the exact simulation",
                    csv_dir, "ablate_overlap_real");

    std::printf("\nUniform patterns sustain the fluid limit with tiny "
                "queues; clustered bursts stall\nsmall queues even at "
                "sustainable average rates. Real detector patterns "
                "behave close\nto uniform — the paper's assumption "
                "holds for these workloads.\n");
    return 0;
}
