/**
 * @file
 * Regenerates Figure 16: energy consumption versus the target error
 * rate for fft. Ideal is the floor everywhere; treeErrors tracks it
 * at relaxed targets but the gap opens as the quality demand rises
 * (more false positives -> more re-computation).
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto exp =
        benchutil::Prepare("fft", benchutil::PaperConfig());

    const std::vector<double> targets = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const std::vector<core::Scheme> schemes = {
        core::Scheme::kIdeal, core::Scheme::kRandom,
        core::Scheme::kUniform, core::Scheme::kEma,
        core::Scheme::kLinear, core::Scheme::kTree};

    std::vector<std::string> headers = {"Target error %"};
    for (core::Scheme s : schemes)
        headers.push_back(core::SchemeName(s));
    Table table(std::move(headers));

    for (double target : targets) {
        std::vector<std::string> row = {Table::Num(target, 0)};
        for (core::Scheme s : schemes) {
            const auto report = exp->ReportAtTargetError(s, target);
            row.push_back(
                Table::Num(report.costs.NormalizedEnergy(), 3));
        }
        table.AddRow(std::move(row));
    }
    benchutil::Emit(table,
                    "Figure 16: fft whole-app energy (normalized to CPU "
                    "baseline) vs target error rate",
                    csv_dir, "fig16_energy_vs_toq");

    const auto npu = exp->NpuReport();
    std::printf("\nUnchecked NPU reference: normalized energy %.3f "
                "(%.2fx saving) at %.2f%% output error.\nThe "
                "Ideal-vs-tree gap grows as the target tightens — the "
                "paper's false-positive effect.\n",
                npu.costs.NormalizedEnergy(), npu.costs.EnergySaving(),
                npu.output_error_pct);
    return 0;
}
