/**
 * @file
 * Regenerates Figure 15: whole-application speedup over the CPU
 * baseline for the unchecked NPU and every Rumba scheme at the 90%
 * target output quality. Because recovery re-execution overlaps with
 * accelerator execution (Section 3.3) and the checkers are faster
 * than the accelerator (Figure 17), Rumba maintains the accelerator's
 * speedup as long as the CPU keeps up with the fix stream.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const auto schemes = core::FixingSchemes();
    std::vector<std::string> headers = {"Application", "NPU"};
    for (core::Scheme s : schemes)
        headers.push_back(core::SchemeName(s));
    Table table(headers);

    std::vector<double> npu_speedups;
    std::map<core::Scheme, std::vector<double>> scheme_speedups;
    for (const auto& exp : experiments) {
        const auto npu = exp->NpuReport();
        std::vector<std::string> row = {
            exp->Bench().Info().name,
            Table::Num(npu.costs.Speedup(), 2)};
        npu_speedups.push_back(npu.costs.Speedup());
        for (core::Scheme s : schemes) {
            const auto report = exp->ReportAtTargetError(
                s, benchutil::kTargetErrorPct);
            row.push_back(Table::Num(report.costs.Speedup(), 2));
            scheme_speedups[s].push_back(report.costs.Speedup());
        }
        table.AddRow(std::move(row));
    }
    std::vector<std::string> avg = {
        "average", Table::Num(benchutil::Mean(npu_speedups), 2)};
    std::vector<std::string> geo = {
        "geomean", Table::Num(benchutil::GeoMean(npu_speedups), 2)};
    for (core::Scheme s : schemes) {
        avg.push_back(
            Table::Num(benchutil::Mean(scheme_speedups[s]), 2));
        geo.push_back(
            Table::Num(benchutil::GeoMean(scheme_speedups[s]), 2));
    }
    table.AddRow(std::move(avg));
    table.AddRow(std::move(geo));

    benchutil::Emit(table,
                    "Figure 15: whole-app speedup vs CPU baseline at "
                    "90% target output quality",
                    csv_dir, "fig15_speedup");

    std::printf("\nHeadline: Rumba (treeErrors) keeps %.2fx of the "
                "unchecked NPU's %.2fx average\nspeedup (paper: ~2.1x "
                "maintained). kmeans regresses on the accelerator for "
                "both,\nas the paper also observes.\n",
                benchutil::Mean(scheme_speedups[core::Scheme::kTree]),
                benchutil::Mean(npu_speedups));
    return 0;
}
