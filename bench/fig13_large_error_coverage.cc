/**
 * @file
 * Regenerates Figure 13: relative coverage of large errors at the
 * 90% target output quality — the fraction of a scheme's fixes that
 * actually land on large errors, normalized to Ideal (=100%).
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const auto schemes = core::DetectorSchemes();
    std::vector<std::string> headers = {"Application"};
    for (core::Scheme s : schemes)
        headers.push_back(core::SchemeName(s));
    Table table(std::move(headers));

    std::map<core::Scheme, std::vector<double>> per_scheme;
    for (const auto& exp : experiments) {
        std::vector<std::string> row = {exp->Bench().Info().name};
        for (core::Scheme s : schemes) {
            const auto report = exp->ReportAtTargetError(
                s, benchutil::kTargetErrorPct);
            row.push_back(Table::Num(report.relative_coverage_pct, 1));
            per_scheme[s].push_back(report.relative_coverage_pct);
        }
        table.AddRow(std::move(row));
    }
    std::vector<std::string> avg = {"average"};
    for (core::Scheme s : schemes)
        avg.push_back(Table::Num(benchutil::Mean(per_scheme[s]), 1));
    table.AddRow(std::move(avg));

    benchutil::Emit(table,
                    "Figure 13: relative coverage of large errors at "
                    "90% target output quality (Ideal = 100)",
                    csv_dir, "fig13_large_error_coverage");

    std::printf("\nPaper shape: linearErrors ~58%% and treeErrors ~67%% "
                "average relative coverage,\nboth far above "
                "Random/Uniform.\n");
    return 0;
}
