/**
 * @file
 * Serving-layer throughput: invocation throughput of the sharded
 * engine (src/serve) at 1 vs 4 shards over one deployed artifact.
 *
 * The paper's Figure 8 overlap argument applied to serving: an
 * invocation's latency is CPU time (normalize, check, recover,
 * verify) plus accelerator occupancy. The accelerator part is modeled
 * (ServeConfig::emulated_device_ns) and calibrated at startup to 4x
 * the *measured* CPU time per element on this machine, so the bench
 * is meaningful on any host — including single-core CI runners, where
 * shards overlap device wait rather than CPU time, exactly as N
 * accelerators behind one host core would.
 *
 * Modes:
 *   (default)   shard sweep + exit-code invariant: >= 2.5x
 *               throughput at 4 shards vs 1.
 *   --smoke     quick concurrent submit/drain/shutdown pass (for the
 *               sanitizer suites); no timing assertions.
 *   --gate      deterministic synchronous pass for the telemetry
 *               baseline (ci.sh diffs the RUMBA_METRICS_OUT snapshot
 *               against bench/baselines with rumba-stat). Submission
 *               waits for each future, so every counter is
 *               reproducible; concurrency (and with it last-writer
 *               gauge races) is deliberately absent.
 *
 * The default mode also measures the observability tax: the same
 * 1-shard stream with request tracing, flight recording, SLO
 * monitoring, the cost profiler (per-stage CPU attribution + the
 * efficiency estimator) and a live scrape server against the same
 * stream with all of it off, asserting the instrumented run costs
 * < 5% of the serving wall time in extra CPU.
 */

#include <ctime>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/batch_view.h"
#include "core/runtime.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/timer.h"
#include "serve/engine.h"

using namespace rumba;

namespace {

constexpr size_t kRequests = 16;
constexpr size_t kBatch = 500;

core::RuntimeConfig
DeployConfig()
{
    return core::RuntimeConfig::Builder()
        .WithChecker(core::Scheme::kTree)
        .WithTunerMode(core::TuningMode::kToq)
        .WithTargetErrorPct(benchutil::kTargetErrorPct)
        .WithTrainEpochs(60)
        .WithElementCaps(2000, 2000)
        .Build();
}

/** Flat request stream: kRequests x kBatch elements, wrapping over
 *  the kernel's test inputs. */
std::vector<double>
RequestStream(const apps::Benchmark& bench)
{
    const auto inputs = bench.TestInputs();
    const size_t in_w = bench.NumInputs();
    std::vector<double> flat;
    flat.reserve(kRequests * kBatch * in_w);
    for (size_t e = 0; e < kRequests * kBatch; ++e) {
        const auto& row = inputs[e % inputs.size()];
        flat.insert(flat.end(), row.begin(), row.end());
    }
    return flat;
}

serve::InvocationRequest
NthRequest(const std::vector<double>& stream, size_t r, size_t in_w)
{
    serve::InvocationRequest request;
    request.count = kBatch;
    request.width = in_w;
    request.inputs.assign(
        stream.begin() + static_cast<ptrdiff_t>(r * kBatch * in_w),
        stream.begin() +
            static_cast<ptrdiff_t>((r + 1) * kBatch * in_w));
    return request;
}

/** Measured CPU nanoseconds per element of one deployed runtime. */
uint64_t
CalibrateCpuNsPerElement(const core::Artifact& artifact,
                         const std::vector<double>& stream, size_t in_w,
                         size_t out_w)
{
    auto runtime =
        core::RumbaRuntime::FromArtifact(artifact, DeployConfig());
    if (!runtime.ok()) {
        std::fprintf(stderr, "calibration deploy: %s\n",
                     runtime.status().ToString().c_str());
        std::exit(1);
    }
    std::vector<double> out(kBatch * out_w);
    const core::BatchView warmup(stream.data(), kBatch, in_w);
    (*runtime)->ProcessInvocation(warmup, out.data());  // warm caches.
    const uint64_t start = obs::NowNs();
    constexpr size_t kCalibrationRounds = 4;
    for (size_t r = 0; r < kCalibrationRounds; ++r) {
        const core::BatchView batch(
            stream.data() + r * kBatch * in_w, kBatch, in_w);
        (*runtime)->ProcessInvocation(batch, out.data());
    }
    const uint64_t elapsed = obs::NowNs() - start;
    return std::max<uint64_t>(1,
                              elapsed / (kCalibrationRounds * kBatch));
}

/** Wall seconds to serve the whole stream on @p shards shards.
 *  @p instrumented false turns the whole observability stack off
 *  (no request traces, no flight recorder, no SLO monitors, no
 *  ground-truth audit sampler). */
double
TimedRun(const core::Artifact& artifact, size_t shards,
         uint64_t device_ns, const std::vector<double>& stream,
         size_t in_w, bool instrumented = true)
{
    serve::ServeConfig config;
    config.shards = shards;
    config.queue_capacity = kRequests;  // admit the whole stream.
    config.emulated_device_ns = device_ns;
    if (!instrumented) {
        config.trace.enabled = false;
        config.flight.capacity = 0;
        config.slo.latency_bound_ns = 0;
        config.slo.quality_margin_pct = -1.0;
        config.audit.enabled = false;
        config.profile.enabled = false;
    }
    auto engine = serve::ShardedEngine::Create(artifact, DeployConfig(),
                                               config);
    if (!engine.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     engine.status().ToString().c_str());
        std::exit(1);
    }

    const uint64_t start = obs::NowNs();
    std::vector<std::future<serve::InvocationResult>> futures;
    futures.reserve(kRequests);
    for (size_t r = 0; r < kRequests; ++r)
        futures.push_back(
            (*engine)->Submit(NthRequest(stream, r, in_w)));
    (*engine)->Drain();
    const double seconds =
        static_cast<double>(obs::NowNs() - start) * 1e-9;

    for (auto& future : futures) {
        const serve::InvocationResult result = future.get();
        if (!result.status.ok()) {
            std::fprintf(stderr, "request failed: %s\n",
                         result.status.ToString().c_str());
            std::exit(1);
        }
    }
    (*engine)->Shutdown();
    return seconds;
}

int
RunSmoke(const core::Artifact& artifact,
         const std::vector<double>& stream, size_t in_w)
{
    serve::ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 8;
    config.max_coalesce_elements = 2 * kBatch;
    auto engine = serve::ShardedEngine::Create(artifact, DeployConfig(),
                                               config);
    if (!engine.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     engine.status().ToString().c_str());
        return 1;
    }
    // Two client threads race the submit path; backpressure rejects
    // are acceptable, anything else is not.
    std::vector<std::thread> clients;
    std::atomic<size_t> failures{0};
    for (size_t t = 0; t < 2; ++t) {
        clients.emplace_back([&, t] {
            for (size_t r = 0; r < kRequests / 2; ++r) {
                auto future = (*engine)->Submit(NthRequest(
                    stream, (t * kRequests / 2 + r), in_w));
                const auto result = future.get();
                if (!result.status.ok() &&
                    result.status.code() !=
                        core::StatusCode::kResourceExhausted)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto& client : clients)
        client.join();
    (*engine)->Drain();
    (*engine)->Shutdown();
    std::printf("serve smoke: %zu unexpected failures\n",
                failures.load());
    return failures.load() == 0 ? 0 : 1;
}

int
RunGate(const core::Artifact& artifact,
        const std::vector<double>& stream, size_t in_w)
{
    serve::ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 4;
    auto engine = serve::ShardedEngine::Create(artifact, DeployConfig(),
                                               config);
    if (!engine.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     engine.status().ToString().c_str());
        return 1;
    }
    // Strictly synchronous: one request in flight at a time, so every
    // serve/runtime counter lands in a reproducible order.
    size_t served = 0;
    for (size_t r = 0; r < kRequests; ++r) {
        const auto result =
            (*engine)->Submit(NthRequest(stream, r, in_w)).get();
        if (!result.status.ok()) {
            std::fprintf(stderr, "gate request %zu: %s\n", r,
                         result.status.ToString().c_str());
            return 1;
        }
        served += result.report.elements;
    }
    (*engine)->Shutdown();
    std::printf("serve gate: %zu elements over %zu requests\n", served,
                kRequests);
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    bool smoke = false, gate = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--gate") == 0)
            gate = true;
    }

    std::fprintf(stderr, "[serve_throughput] training inversek2j and "
                         "exporting the artifact...\n");
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               DeployConfig());
    const core::Artifact artifact = trained.ExportArtifact();
    const size_t in_w = trained.Bench().NumInputs();
    const size_t out_w = trained.Bench().NumOutputs();
    const std::vector<double> stream = RequestStream(trained.Bench());

    if (smoke)
        return RunSmoke(artifact, stream, in_w);
    if (gate)
        return RunGate(artifact, stream, in_w);

    // Accelerator occupancy: 4x the measured CPU cost per element
    // (see file comment), so device wait dominates and sharding has
    // real overlap to win — on any host speed.
    const uint64_t cpu_ns =
        CalibrateCpuNsPerElement(artifact, stream, in_w, out_w);
    const uint64_t device_ns = 4 * cpu_ns;
    std::fprintf(stderr,
                 "[serve_throughput] calibrated %llu ns CPU/element, "
                 "emulating %llu ns device/element\n",
                 static_cast<unsigned long long>(cpu_ns),
                 static_cast<unsigned long long>(device_ns));

    Table table({"Shards", "Requests", "Elements", "Wall ms",
                 "Elements/s", "Speedup x"});
    double base_seconds = 0.0;
    double ratio = 0.0;
    for (const size_t shards : {size_t{1}, size_t{4}}) {
        const double seconds =
            TimedRun(artifact, shards, device_ns, stream, in_w);
        if (shards == 1)
            base_seconds = seconds;
        const double speedup = base_seconds / seconds;
        if (shards == 4)
            ratio = speedup;
        table.AddRow(
            {Table::Int(static_cast<long>(shards)),
             Table::Int(static_cast<long>(kRequests)),
             Table::Int(static_cast<long>(kRequests * kBatch)),
             Table::Num(seconds * 1e3, 1),
             Table::Num(static_cast<double>(kRequests * kBatch) /
                            seconds,
                        0),
             Table::Num(speedup, 2)});
    }
    benchutil::Emit(table,
                    "Serving throughput: sharded engine, modeled "
                    "accelerator occupancy (inversek2j)",
                    csv_dir, "serve_throughput");

    constexpr double kRequiredSpeedup = 2.5;
    std::printf("\n4-shard speedup %.2fx (required >= %.1fx): %s\n",
                ratio, kRequiredSpeedup,
                ratio >= kRequiredSpeedup ? "ok" : "FAILED");

    // ---- Instrumentation overhead ----------------------------------
    // The observability tax: the same 1-shard stream with the full
    // stack on (request tracing, flight recorder, SLO monitors, live
    // scrape server being polled) vs all of it off. Wall-clock deltas
    // drown in scheduler and sleep-wakeup jitter on a small CI box,
    // but instrumentation burns *CPU* and the emulated device wait
    // does not — so the gate compares process CPU time
    // (CLOCK_PROCESS_CPUTIME_ID, ns resolution, all threads) across
    // interleaved off/on pairs and expresses the extra CPU as a
    // fraction of the off-side serving wall time: the throughput a
    // CPU-bound deployment would give up. Sleep jitter never enters
    // the measurement, and the median round (below) keeps one
    // CI-neighbor load burst from poisoning the verdict.
    obs::ObservabilityServer server;
    const bool server_up = server.Start(0);  // ephemeral port.
    std::atomic<bool> polling{server_up};
    std::thread poller([&] {
        std::string body;
        int status = 0;
        while (polling.load(std::memory_order_relaxed)) {
            if (server_up)
                obs::HttpGet(server.Port(), "/metrics", &body,
                             &status);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    });
    const auto cpu_seconds = [] {
        timespec ts{};
        ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    };
    constexpr size_t kOverheadRounds = 11;
    TimedRun(artifact, 1, device_ns, stream, in_w, false);  // warmup.
    TimedRun(artifact, 1, device_ns, stream, in_w, true);
    double wall_off = 0.0, cpu_off = 0.0, cpu_on = 0.0;
    std::vector<double> round_pct;
    round_pct.reserve(kOverheadRounds);
    for (size_t round = 0; round < kOverheadRounds; ++round) {
        const double cpu_0 = cpu_seconds();
        const double wall = TimedRun(artifact, 1, device_ns, stream,
                                     in_w, /*instrumented=*/false);
        const double cpu_1 = cpu_seconds();
        TimedRun(artifact, 1, device_ns, stream, in_w,
                 /*instrumented=*/true);
        const double cpu_2 = cpu_seconds();
        wall_off += wall;
        cpu_off += cpu_1 - cpu_0;
        cpu_on += cpu_2 - cpu_1;
        round_pct.push_back(((cpu_2 - cpu_1) - (cpu_1 - cpu_0)) /
                            wall * 100.0);
    }
    polling.store(false, std::memory_order_relaxed);
    poller.join();
    server.Stop();

    // Gate on the median round, not the aggregate: a single
    // scheduler burst (a parallel ctest neighbor, a CI builder)
    // landing in one round poisons a sum but cannot move the median
    // of 11 interleaved off/on pairs. A *systematic* cost shifts
    // every round and is still caught.
    constexpr double kMaxOverheadPct = 5.0;
    std::sort(round_pct.begin(), round_pct.end());
    const double overhead_pct = round_pct[round_pct.size() / 2];
    std::printf("\n== Instrumentation overhead: tracing + SLOs + "
                "scrape server ==\n"
                "cpu off %.1f ms, cpu on %.1f ms over %.0f ms "
                "serving -> %+.1f%% median extra CPU "
                "(aggregate %+.1f%%, required < %.0f%%): %s\n",
                cpu_off * 1e3, cpu_on * 1e3, wall_off * 1e3,
                overhead_pct,
                (cpu_on - cpu_off) / wall_off * 100.0,
                kMaxOverheadPct,
                overhead_pct < kMaxOverheadPct ? "ok" : "FAILED");

    // Sanitized builds run the same workloads for the memory/race
    // coverage but are not performance-representative — don't let
    // instrumented slowdowns fail the perf gates there.
    if (!obs::CollectRunMetadata().sanitizers.empty()) {
        std::printf("sanitized build: perf gates informational only\n");
        return 0;
    }
    return ratio >= kRequiredSpeedup && overhead_pct < kMaxOverheadPct
               ? 0
               : 1;
}
