/**
 * @file
 * Regenerates Figure 17: time used by the error predictors relative
 * to the accelerator invocation they check. All ratios must stay
 * below 1 — the checker finishes before the NPU does, so error
 * prediction never stalls the accelerator (which is why placement
 * Configuration 2 adds no latency).
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    Table table({"Application", "NPU cycles", "linearErrors cycles",
                 "treeErrors cycles", "EMA cycles", "linear/NPU",
                 "tree/NPU", "EMA/NPU"});
    bool all_below_one = true;
    for (const auto& exp : experiments) {
        const double npu_cycles =
            static_cast<double>(exp->RumbaNpuCycles());
        const double lin =
            exp->CheckerCost(core::Scheme::kLinear).cycles;
        const double tree =
            exp->CheckerCost(core::Scheme::kTree).cycles;
        const double ema = exp->CheckerCost(core::Scheme::kEma).cycles;
        all_below_one &= lin < npu_cycles && tree < npu_cycles &&
                         ema < npu_cycles;
        table.AddRow({exp->Bench().Info().name,
                      Table::Num(npu_cycles, 0), Table::Num(lin, 0),
                      Table::Num(tree, 0), Table::Num(ema, 0),
                      Table::Num(lin / npu_cycles, 3),
                      Table::Num(tree / npu_cycles, 3),
                      Table::Num(ema / npu_cycles, 3)});
    }
    benchutil::Emit(table,
                    "Figure 17: error-predictor time relative to one "
                    "NPU invocation (must be < 1)",
                    csv_dir, "fig17_prediction_time");

    std::printf("\n%s: the predicted error is always available before "
                "the NPU finishes, so the\naccelerator never waits on "
                "the checker.\n",
                all_below_one ? "PASS" : "VIOLATION");
    return all_below_one ? 0 : 1;
}
