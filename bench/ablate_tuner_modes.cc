/**
 * @file
 * Ablation for Section 3.4: the online tuner's three modes (TOQ,
 * Energy, Quality) driving the live RumbaRuntime across a stream of
 * accelerator invocations. Shows the threshold trajectory, the fixes
 * per invocation and the residual output error as each mode converges
 * to its own goal.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"

using namespace rumba;

namespace {

void
RunMode(const char* title, core::TuningMode mode,
        const std::string& csv_dir, const std::string& csv_name)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 120;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.mode = mode;
    cfg.tuner.target_error_pct = 10.0;
    cfg.tuner.iteration_budget = 60;
    cfg.tuner.adjust_factor = 1.5;
    cfg.initial_threshold = 0.02;

    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    const auto inputs = runtime.Bench().TestInputs();
    const std::vector<double> flat = core::FlattenBatch(inputs);
    const size_t in_w = runtime.Bench().NumInputs();

    Table table({"Invocation", "Threshold", "Fixes", "Fix %",
                 "Output error %", "CPU busy ratio"});
    const size_t batch = 500;
    const size_t rounds = 16;
    std::vector<double> out(batch * runtime.Bench().NumOutputs());
    for (size_t r = 0; r < rounds; ++r) {
        const size_t start = (r * batch) % (inputs.size() - batch);
        const core::BatchView in(flat.data() + start * in_w, batch,
                                 in_w);
        const auto report = runtime.ProcessInvocation(in, out.data());
        table.AddRow(
            {Table::Int(static_cast<long>(r)),
             Table::Num(report.threshold_used, 4),
             Table::Int(static_cast<long>(report.fixes)),
             Table::Num(100.0 * static_cast<double>(report.fixes) /
                            static_cast<double>(batch),
                        1),
             Table::Num(report.output_error_pct, 2),
             Table::Num(report.costs.recovery_ns /
                            std::max(1.0, report.costs.npu_ns),
                        2)});
    }
    benchutil::Emit(table, title, csv_dir, csv_name);
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    RunMode("Tuner ablation: TOQ mode (target 10% output error)",
            core::TuningMode::kToq, csv_dir, "ablate_tuner_toq");
    RunMode("Tuner ablation: Energy mode (budget 60 fixes/invocation)",
            core::TuningMode::kEnergy, csv_dir, "ablate_tuner_energy");
    RunMode("Tuner ablation: Quality mode (CPU-saturating)",
            core::TuningMode::kQuality, csv_dir, "ablate_tuner_quality");
    std::printf("\nTOQ holds the residual error near its target; "
                "Energy pins fixes to the budget;\nQuality pushes fixes "
                "up until CPU recovery time matches accelerator "
                "time.\n");
    return 0;
}
