/**
 * @file
 * Regenerates Figure 12: the percentage of output elements that must
 * be re-executed to reach the 90% target output quality, per scheme.
 * Fewer fixes means less recovery energy, so schemes closer to Ideal
 * are better.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const auto schemes = core::FixingSchemes();
    std::vector<std::string> headers = {"Application", "Unchecked err %"};
    for (core::Scheme s : schemes)
        headers.push_back(core::SchemeName(s));
    Table table(std::move(headers));

    std::map<core::Scheme, std::vector<double>> per_scheme;
    for (const auto& exp : experiments) {
        std::vector<std::string> row = {
            exp->Bench().Info().name,
            Table::Num(exp->UncheckedErrorPct(), 2)};
        for (core::Scheme s : schemes) {
            const auto report = exp->ReportAtTargetError(
                s, benchutil::kTargetErrorPct);
            row.push_back(Table::Num(100.0 * report.fix_fraction, 2));
            per_scheme[s].push_back(100.0 * report.fix_fraction);
        }
        table.AddRow(std::move(row));
    }
    std::vector<std::string> avg = {"average", ""};
    for (core::Scheme s : schemes)
        avg.push_back(Table::Num(benchutil::Mean(per_scheme[s]), 2));
    table.AddRow(std::move(avg));

    benchutil::Emit(table,
                    "Figure 12: elements re-executed (% of total) for "
                    "90% target output quality",
                    csv_dir, "fig12_fixed_elements");

    std::printf("\nPaper shape: Random needs ~29%% more fixes than "
                "Ideal on average; linearErrors\nand treeErrors only "
                "~9%% and ~6%% more.\n");
    return 0;
}
