/**
 * @file
 * Ablation of the accelerator's fixed-point precision. The datapath
 * quantizes weights and activations to 16-bit values with a
 * configurable binary point; this bench sweeps the fractional bits
 * and reports the accelerator's deviation from the float network and
 * the resulting unchecked output error for a representative
 * application — separating *model* error (the network itself) from
 * *datapath* error (quantization + LUT).
 */

#include <cmath>
#include <cstdio>

#include "apps/benchmark.h"
#include "bench_util.h"
#include "core/pipeline.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const char* kApp = "inversek2j";

    Table table({"Fractional bits", "Resolution",
                 "Mean |NPU - float net|", "Unchecked output err %"});
    for (int bits : {4, 6, 8, 10, 12}) {
        core::PipelineConfig cfg;
        cfg.train_epochs = 120;
        cfg.npu.format.fractional_bits = bits;
        core::Pipeline pipe(apps::MakeBenchmark(kApp), cfg);
        const auto& bench = pipe.Bench();

        npu::Npu accel = pipe.MakeAccelerator(true);
        const auto& tests = pipe.TestInputs();
        double dev = 0.0;
        std::vector<double> errors;
        errors.reserve(tests.size());
        std::vector<double> exact(bench.NumOutputs());
        for (const auto& raw : tests) {
            const auto norm_in = pipe.NormalizeInput(raw);
            const auto npu_out = accel.Invoke(norm_in);
            const auto float_out = pipe.RumbaMlp().Forward(norm_in);
            for (size_t o = 0; o < npu_out.size(); ++o)
                dev += std::fabs(npu_out[o] - float_out[o]);
            bench.RunExact(raw.data(), exact.data());
            errors.push_back(bench.ElementError(
                exact, pipe.DenormalizeOutput(npu_out)));
        }
        dev /= static_cast<double>(tests.size() * bench.NumOutputs());
        table.AddRow({Table::Int(bits),
                      Table::Num(1.0 / (1 << bits), 5),
                      Table::Num(dev, 5),
                      Table::Num(bench.AggregateError(errors), 2)});
    }
    benchutil::Emit(table,
                    std::string("Fixed-point ablation (") + kApp +
                        "): datapath precision vs accelerator error",
                    csv_dir, "ablate_fixed_point");

    std::printf("\nBoth ends fail for different reasons: few fractional "
                "bits add quantization noise;\nmany fractional bits "
                "shrink the integer range until pre-activation sums "
                "saturate the\n16-bit datapath. Q5.10 (the default) is "
                "the sweet spot — its deviation sits an order\nof "
                "magnitude below the network's own model error, "
                "matching the NPU design's\nchoice of 16-bit PEs.\n");
    return 0;
}
