/**
 * @file
 * Predictor-quality deep dive: figures 10-13 compare schemes through
 * the system's behavior; this ablation measures the checkers
 * *directly* as statistical estimators of the true element error —
 * Spearman rank correlation (does a higher prediction mean a higher
 * true error?) and large-error precision/recall at the operating
 * threshold the 90% target picks. Explains *why* tree beats linear on
 * some applications and loses on others.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/statistics.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const std::vector<core::Scheme> checkers = {
        core::Scheme::kEma, core::Scheme::kLinear, core::Scheme::kTree,
        core::Scheme::kHybrid};

    Table corr({"Application", "EMA rho", "linear rho", "tree rho",
                "hybrid rho"});
    Table pr({"Application", "Scheme", "Precision %", "Recall %",
              "Fix %"});
    for (const auto& exp : experiments) {
        const auto& truth = exp->TrueErrors();

        std::vector<std::string> row = {exp->Bench().Info().name};
        for (core::Scheme s : checkers) {
            row.push_back(Table::Num(
                SpearmanCorrelation(exp->Scores(s), truth), 3));
        }
        corr.AddRow(std::move(row));

        // Precision/recall of "large error" detection at the 90%-TOQ
        // operating point. Large = true error > 20% (or the 90th
        // percentile for concentrated metrics, as in Fig 13).
        double cutoff = 0.20;
        {
            std::vector<double> copy = truth;
            cutoff = std::min(cutoff, Percentile(std::move(copy), 90.0));
        }
        for (core::Scheme s : checkers) {
            const auto fixes = exp->FixSetForTargetError(
                s, benchutil::kTargetErrorPct);
            size_t tp = 0, fp = 0, fn = 0;
            for (size_t i = 0; i < truth.size(); ++i) {
                const bool large = truth[i] > cutoff;
                if (fixes[i] && large)
                    ++tp;
                else if (fixes[i] && !large)
                    ++fp;
                else if (!fixes[i] && large)
                    ++fn;
            }
            const double precision =
                tp + fp == 0 ? 0.0
                             : 100.0 * static_cast<double>(tp) /
                                   static_cast<double>(tp + fp);
            const double recall =
                tp + fn == 0 ? 0.0
                             : 100.0 * static_cast<double>(tp) /
                                   static_cast<double>(tp + fn);
            const double fixed_pct =
                100.0 * static_cast<double>(tp + fp) /
                static_cast<double>(truth.size());
            pr.AddRow({exp->Bench().Info().name, core::SchemeName(s),
                       Table::Num(precision, 1), Table::Num(recall, 1),
                       Table::Num(fixed_pct, 1)});
        }
    }
    benchutil::Emit(corr,
                    "Checker quality: Spearman rank correlation of "
                    "predicted vs true element error",
                    csv_dir, "ablate_predictor_rho");
    benchutil::Emit(pr,
                    "Large-error detection precision/recall at the "
                    "90%-TOQ operating point",
                    csv_dir, "ablate_predictor_pr");

    std::printf("\nHigh rank correlation is what makes a checker "
                "energy-efficient: it spends fixes\nwhere the oracle "
                "would. Where linear's rho collapses (periodic or "
                "clustered error\nstructure), its fix count balloons — "
                "exactly Figures 11/12's pattern.\n");
    return 0;
}
