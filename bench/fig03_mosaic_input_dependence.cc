/**
 * @file
 * Regenerates Figure 3: the mosaic application's output error across
 * 800 flower images under loop perforation of its brightness-
 * averaging phase. The paper reports an average error around 5% with
 * excursions up to ~23% — the input dependence that motivates
 * continuous (rather than sampled) quality checks.
 */

#include <algorithm>
#include <cstdio>

#include "apps/mosaic.h"
#include "bench_util.h"
#include "common/statistics.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    apps::MosaicStudy::Options opt;  // 800 images, 1-in-16 rows kept.
    const auto errors = apps::MosaicStudy::RunStudy(opt);

    OnlineStats stats;
    for (double e : errors)
        stats.Add(e);

    Table series({"Image", "Output Error %"});
    for (size_t i = 0; i < errors.size(); i += 25)
        series.AddRow({Table::Int(static_cast<long>(i)),
                       Table::Num(errors[i], 2)});
    benchutil::Emit(series,
                    "Figure 3 (sampled series): mosaic output error per "
                    "image (every 25th of 800)",
                    csv_dir, "fig03_mosaic_series");

    Table summary({"Statistic", "Value"});
    summary.AddRow({"Images", Table::Int(static_cast<long>(opt.images))});
    summary.AddRow({"Perforation", "keep 1 row in " +
                                       Table::Int(static_cast<long>(
                                           opt.stride))});
    summary.AddRow({"Average error %", Table::Num(stats.Mean(), 2)});
    summary.AddRow({"Median error %",
                    Table::Num(Percentile(errors, 50.0), 2)});
    summary.AddRow({"90th percentile %",
                    Table::Num(Percentile(errors, 90.0), 2)});
    summary.AddRow({"Max error %", Table::Num(stats.Max(), 2)});
    summary.AddRow(
        {"Images above 2x average",
         Table::Int(static_cast<long>(std::count_if(
             errors.begin(), errors.end(), [&](double e) {
                 return e > 2.0 * stats.Mean();
             })))});
    benchutil::Emit(summary, "Figure 3 (summary): input-dependent error",
                    csv_dir, "fig03_mosaic_summary");

    std::printf("\nPaper shape: average ~5%%, worst case ~23%% — a "
                "sampling-based quality check\nthat skips the worst "
                "images would certify the run as fine.\n");
    return 0;
}
