/**
 * @file
 * Ablation of the accelerator's processing-element count. The paper
 * fixes an 8-PE NPU; this bench sweeps 1..32 PEs and reports each
 * application's invocation latency and the resulting region-level
 * speedup over the CPU, showing where the static schedule stops
 * scaling (wave counts saturate at 1 once PEs >= widest layer).
 */

#include <cstdio>

#include "apps/benchmark.h"
#include "bench_util.h"
#include "npu/schedule.h"
#include "sim/cpu_model.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const std::vector<size_t> pe_counts = {1, 2, 4, 8, 16, 32};
    const sim::CpuModel cpu;
    const double npu_ghz = npu::NpuConfig().frequency_ghz;

    std::vector<std::string> headers = {"Application", "CPU ns/iter"};
    for (size_t p : pe_counts)
        headers.push_back(Table::Int(static_cast<long>(p)) + " PE");
    Table cycles_table(headers);
    Table speedup_table(headers);

    for (const auto& name : apps::BenchmarkNames()) {
        auto bench = apps::MakeBenchmark(name);
        const double cpu_ns =
            cpu.Nanoseconds(bench->ProfileKernel(64));
        std::vector<std::string> crow = {name, Table::Num(cpu_ns, 1)};
        std::vector<std::string> srow = {name, Table::Num(cpu_ns, 1)};
        for (size_t pes : pe_counts) {
            const npu::Schedule sched = npu::BuildSchedule(
                bench->Info().rumba_topology, pes);
            const double npu_ns =
                static_cast<double>(sched.total_cycles) / npu_ghz;
            crow.push_back(
                Table::Int(static_cast<long>(sched.total_cycles)));
            srow.push_back(Table::Num(cpu_ns / npu_ns, 2));
        }
        cycles_table.AddRow(std::move(crow));
        speedup_table.AddRow(std::move(srow));
    }
    benchutil::Emit(cycles_table,
                    "PE-count ablation: accelerator cycles per "
                    "invocation (Rumba topologies)",
                    csv_dir, "ablate_npu_pes_cycles");
    benchutil::Emit(speedup_table,
                    "PE-count ablation: region-level kernel speedup "
                    "(CPU ns / NPU ns)",
                    csv_dir, "ablate_npu_pes_speedup");

    std::printf("\nBeyond the widest layer's neuron count, extra PEs "
                "idle: the paper's 8-PE design\nis at the knee for "
                "these topologies (only jmeint's 32-neuron layer and "
                "jpeg's 64-wide\nlayers keep scaling past 8).\n");
    return 0;
}
