/**
 * @file
 * Regenerates Table 2: the microarchitectural parameters of the
 * modeled x86-64 host core — plus the derived timing/energy model
 * constants this reproduction uses in place of gem5 + McPAT.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/cpu_model.h"
#include "sim/energy_model.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const sim::CoreParams p;

    Table table({"Parameter", "Value"});
    auto row = [&table](const char* name, const std::string& value) {
        table.AddRow({name, value});
    };
    row("Fetch/Issue width", Table::Int(static_cast<long>(p.fetch_width)) +
                                 "/" +
                                 Table::Int(static_cast<long>(
                                     p.issue_width)));
    row("INT ALUs/FPUs", Table::Int(static_cast<long>(p.int_alus)) + "/" +
                             Table::Int(static_cast<long>(p.fpus)));
    row("Load/Store FUs", Table::Int(static_cast<long>(p.load_fus)) +
                              "/" +
                              Table::Int(static_cast<long>(p.store_fus)));
    row("Issue Queue Entries",
        Table::Int(static_cast<long>(p.issue_queue_entries)));
    row("ROB Entries", Table::Int(static_cast<long>(p.rob_entries)));
    row("INT/FP Physical Registers",
        Table::Int(static_cast<long>(p.int_phys_regs)) + "/" +
            Table::Int(static_cast<long>(p.fp_phys_regs)));
    row("BTB Entries", Table::Int(static_cast<long>(p.btb_entries)));
    row("RAS Entries", Table::Int(static_cast<long>(p.ras_entries)));
    row("Load/Store Queue Entries", "48/48");
    row("L1 iCache",
        Table::Int(static_cast<long>(p.l1_icache_kb)) + "KB");
    row("L1 dCache",
        Table::Int(static_cast<long>(p.l1_dcache_kb)) + "KB");
    row("L1/L2 Hit Latency",
        Table::Int(static_cast<long>(p.l1_hit_cycles)) + "/" +
            Table::Int(static_cast<long>(p.l2_hit_cycles)) + " cycles");
    row("L1/L2 Associativity",
        Table::Int(static_cast<long>(p.l1_assoc)));
    row("ITLB/DTLB Entries",
        Table::Int(static_cast<long>(p.itlb_entries)) + "/" +
            Table::Int(static_cast<long>(p.dtlb_entries)));
    row("L2 Size", Table::Int(static_cast<long>(p.l2_size_mb)) + " MB");
    row("Branch Predictor", p.branch_predictor);
    benchutil::Emit(table,
                    "Table 2: Microarchitectural parameters of the "
                    "x86-64 core",
                    csv_dir, "tab02_microarch");

    Table model({"Model constant", "Value"});
    const sim::EnergyParams e;
    model.AddRow({"Core frequency (GHz)", Table::Num(p.frequency_ghz, 1)});
    model.AddRow({"ILP derate", Table::Num(p.ilp_derate, 2)});
    model.AddRow(
        {"Branch misprediction rate", Table::Num(p.branch_misp_rate, 3)});
    model.AddRow({"Misprediction penalty (cycles)",
                  Table::Int(static_cast<long>(p.branch_misp_penalty))});
    model.AddRow({"L1d miss rate", Table::Num(p.l1d_miss_rate, 3)});
    model.AddRow({"Memory latency (cycles)",
                  Table::Int(static_cast<long>(p.mem_latency_cycles))});
    model.AddRow(
        {"CPU uop overhead (pJ)", Table::Num(e.cpu_uop_overhead_pj, 1)});
    model.AddRow({"CPU FP add/mul/div (pJ)",
                  Table::Num(e.cpu_fp_add_pj, 0) + "/" +
                      Table::Num(e.cpu_fp_mul_pj, 0) + "/" +
                      Table::Num(e.cpu_fp_div_pj, 0)});
    model.AddRow(
        {"CPU busy/idle static (W)",
         Table::Num(e.cpu_busy_static_w, 2) + "/" +
             Table::Num(e.cpu_idle_static_w, 2)});
    model.AddRow({"NPU MAC / LUT / queue word (pJ)",
                  Table::Num(e.npu_mac_pj, 1) + "/" +
                      Table::Num(e.npu_lut_pj, 1) + "/" +
                      Table::Num(e.npu_queue_word_pj, 1)});
    model.AddRow({"NPU static (W)", Table::Num(e.npu_static_w, 3)});
    model.AddRow({"Checker MAC / compare (pJ)",
                  Table::Num(e.chk_mac_pj, 1) + "/" +
                      Table::Num(e.chk_compare_pj, 1)});
    benchutil::Emit(model,
                    "Derived timing/energy model constants (gem5+McPAT "
                    "substitute)",
                    csv_dir, "tab02_model_constants");
    return 0;
}
