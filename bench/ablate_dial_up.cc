/**
 * @file
 * The paper's headline narrative made explicit (Section 3.1):
 * "with Rumba's error correction capabilities, it will be possible to
 * dial up the amount of approximation ... while still producing user
 * acceptable outputs." For the applications where Table 1 gives Rumba
 * a *smaller* network than the unchecked NPU, this bench compares
 * three operating points at the same 90% quality bar:
 *
 *   (1) the unchecked NPU with its larger network,
 *   (2) the smaller network unchecked (cheaper but over the error bar),
 *   (3) the smaller network + treeErrors fixes (Rumba).
 *
 * Rumba turns the unusably-aggressive configuration (2) into a valid
 * one (3), banking the smaller network's latency/energy advantage.
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    Table table({"Application", "Net (NPU/Rumba)", "NPU cyc big/small",
                 "Err big unchecked %", "Err small unchecked %",
                 "Err small+Rumba %", "Fixes %", "Saving big",
                 "Saving small+Rumba"});
    for (const auto& exp : experiments) {
        const auto& info = exp->Bench().Info();
        if (info.rumba_topology == info.npu_topology)
            continue;  // no dial to turn for this app.
        const auto npu = exp->NpuReport();
        const auto rumba = exp->ReportAtTargetError(
            core::Scheme::kTree, benchutil::kTargetErrorPct);
        table.AddRow(
            {info.name,
             info.npu_topology.ToString() + " / " +
                 info.rumba_topology.ToString(),
             Table::Int(static_cast<long>(exp->PlainNpuCycles())) +
                 " / " +
                 Table::Int(static_cast<long>(exp->RumbaNpuCycles())),
             Table::Num(npu.output_error_pct, 2),
             Table::Num(exp->UncheckedErrorPct(), 2),
             Table::Num(rumba.output_error_pct, 2),
             Table::Num(100.0 * rumba.fix_fraction, 1),
             Table::Num(npu.costs.EnergySaving(), 2) + "x",
             Table::Num(rumba.costs.EnergySaving(), 2) + "x"});
    }
    benchutil::Emit(table,
                    "Dialing up approximation: smaller networks made "
                    "viable by error correction (90% quality bar)",
                    csv_dir, "ablate_dial_up");

    std::printf("\nThe small network alone violates the quality bar; "
                "with Rumba's checks and fixes\nit meets the same bar "
                "the big unchecked network misses anyway — at a "
                "fraction of the\naccelerator latency. That is the "
                "trade the paper's Section 3.1 proposes.\n");
    return 0;
}
