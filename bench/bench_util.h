#ifndef RUMBA_BENCH_BENCH_UTIL_H_
#define RUMBA_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared plumbing for the figure/table regeneration binaries: the
 * paper-scale experiment configuration, experiment preparation with
 * progress logging, and CSV emission (pass --csv-dir <dir> to any
 * bench binary to also dump machine-readable series).
 */

#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"

namespace rumba::benchutil {

/** The paper's target output quality: 90% (10% output error). */
inline constexpr double kTargetErrorPct = 10.0;

/** Full paper-scale experiment configuration. */
core::ExperimentConfig PaperConfig();

/** Prepare one experiment with a progress line on stderr. */
std::unique_ptr<core::Experiment> Prepare(
    const std::string& name, const core::ExperimentConfig& config);

/** Prepare all seven Table 1 benchmarks. */
std::vector<std::unique_ptr<core::Experiment>> PrepareAll(
    const core::ExperimentConfig& config);

/** Parse --csv-dir from argv; empty when absent. */
std::string CsvDir(int argc, char** argv);

/** Print the table and, when @p csv_dir is set, write name.csv. */
void Emit(const Table& table, const std::string& title,
          const std::string& csv_dir, const std::string& name);

/**
 * Print the run's telemetry (invocation-latency percentiles, detector
 * fire rate, fix rate — see src/obs) as one summary line per signal,
 * and write the full metrics snapshot to
 * <csv_dir>/<name>.metrics.csv when @p csv_dir is set. Called by
 * Emit(); RUMBA_METRICS_OUT additionally routes a JSONL snapshot to a
 * file at exit without any per-bench code.
 */
void EmitMetrics(const std::string& csv_dir, const std::string& name);

/** Arithmetic mean of a series. */
double Mean(const std::vector<double>& values);

/** Geometric mean of a positive series. */
double GeoMean(const std::vector<double>& values);

}  // namespace rumba::benchutil

#endif  // RUMBA_BENCH_BENCH_UTIL_H_
