/**
 * @file
 * Regenerates Figure 10: whole-output error as a function of the
 * percentage of output elements fixed, for every benchmark and every
 * selection scheme (Ideal, Random, Uniform, EMA, linearErrors,
 * treeErrors). The technique whose curve hugs Ideal's is the best
 * detector.
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4,
                                           0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
    for (const auto& exp : experiments) {
        std::vector<std::string> headers = {"Scheme"};
        for (double f : fractions)
            headers.push_back(Table::Num(100.0 * f, 0) + "%");
        Table table(std::move(headers));
        for (core::Scheme s : core::FixingSchemes()) {
            std::vector<std::string> row = {core::SchemeName(s)};
            for (double f : fractions) {
                const double err = exp->ErrorWithFixes(
                    exp->FixSetForFraction(s, f));
                row.push_back(Table::Num(err, 2));
            }
            table.AddRow(std::move(row));
        }
        const std::string name = exp->Bench().Info().name;
        benchutil::Emit(table,
                        "Figure 10 (" + name +
                            "): output error (%) vs elements fixed",
                        csv_dir, "fig10_" + name);
    }

    std::printf("\nReading: Ideal is the oracle lower bound; "
                "linearErrors/treeErrors should track it\nclosely while "
                "Random/Uniform need far more fixes for the same "
                "error.\n");
    return 0;
}
