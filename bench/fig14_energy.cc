/**
 * @file
 * Regenerates Figure 14: whole-application energy consumption of the
 * unchecked NPU and every Rumba scheme (at 90% target output
 * quality), normalized to the CPU-only baseline. The paper's headline
 * is the drop from 3.2x (unchecked NPU) to 2.2x (Rumba treeErrors)
 * average energy saving — the price of continuous checking plus
 * re-execution.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const auto schemes = core::FixingSchemes();
    std::vector<std::string> headers = {"Application", "NPU"};
    for (core::Scheme s : schemes)
        headers.push_back(core::SchemeName(s));
    Table norm_table(headers);
    Table saving_table(headers);

    std::vector<double> npu_savings;
    std::map<core::Scheme, std::vector<double>> scheme_savings;
    for (const auto& exp : experiments) {
        const auto npu = exp->NpuReport();
        std::vector<std::string> norm_row = {
            exp->Bench().Info().name,
            Table::Num(npu.costs.NormalizedEnergy(), 3)};
        std::vector<std::string> saving_row = {
            exp->Bench().Info().name,
            Table::Num(npu.costs.EnergySaving(), 2)};
        npu_savings.push_back(npu.costs.EnergySaving());
        for (core::Scheme s : schemes) {
            const auto report = exp->ReportAtTargetError(
                s, benchutil::kTargetErrorPct);
            norm_row.push_back(
                Table::Num(report.costs.NormalizedEnergy(), 3));
            saving_row.push_back(
                Table::Num(report.costs.EnergySaving(), 2));
            scheme_savings[s].push_back(report.costs.EnergySaving());
        }
        norm_table.AddRow(std::move(norm_row));
        saving_table.AddRow(std::move(saving_row));
    }
    std::vector<std::string> avg = {
        "average", Table::Num(benchutil::Mean(npu_savings), 2)};
    std::vector<std::string> geo = {
        "geomean", Table::Num(benchutil::GeoMean(npu_savings), 2)};
    for (core::Scheme s : schemes) {
        avg.push_back(Table::Num(benchutil::Mean(scheme_savings[s]), 2));
        geo.push_back(
            Table::Num(benchutil::GeoMean(scheme_savings[s]), 2));
    }
    saving_table.AddRow(std::move(avg));
    saving_table.AddRow(std::move(geo));

    benchutil::Emit(norm_table,
                    "Figure 14: whole-app energy normalized to the CPU "
                    "baseline (lower is better)",
                    csv_dir, "fig14_energy_normalized");
    benchutil::Emit(saving_table,
                    "Figure 14: energy-saving factor vs CPU baseline "
                    "(higher is better)",
                    csv_dir, "fig14_energy_saving");

    std::printf("\nHeadline: unchecked NPU saves %.2fx on average; "
                "Rumba treeErrors saves %.2fx\n(paper: 3.2x -> 2.2x) — "
                "quality management costs energy but preserves it\n"
                "far better than Random/Uniform checking would.\n",
                benchutil::Mean(npu_savings),
                benchutil::Mean(scheme_savings[core::Scheme::kTree]));
    return 0;
}
