/**
 * @file
 * google-benchmark microbenchmarks of the hot software paths: one
 * accelerator invocation, one check of each predictor, one exact
 * kernel execution, and the offline trainers. These measure the
 * *simulator's* host-side speed (useful when scaling experiments),
 * not the modeled hardware latencies (those are fig17).
 */

#include <benchmark/benchmark.h>

#include "apps/benchmark.h"
#include "common/dataset.h"
#include "common/random.h"
#include "nn/trainer.h"
#include "npu/npu.h"
#include "predict/ema.h"
#include "predict/linear.h"
#include "predict/tree.h"

using namespace rumba;

namespace {

/** Shared small error dataset in [0,1]^4. */
Dataset
ErrorData(size_t n = 2000)
{
    Rng rng(99);
    Dataset d(4, 1);
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> x{rng.Uniform(), rng.Uniform(),
                              rng.Uniform(), rng.Uniform()};
        d.Add(x, {0.2 * x[0] + 0.1 * x[1] * x[2]});
    }
    return d;
}

void
BM_LinearPredict(benchmark::State& state)
{
    predict::LinearErrorPredictor p;
    p.Train(ErrorData());
    const std::vector<double> x{0.1, 0.4, 0.6, 0.9};
    for (auto _ : state)
        benchmark::DoNotOptimize(p.PredictError(x, {}));
}
BENCHMARK(BM_LinearPredict);

void
BM_TreePredict(benchmark::State& state)
{
    predict::TreeErrorPredictor p;
    p.Train(ErrorData());
    const std::vector<double> x{0.1, 0.4, 0.6, 0.9};
    for (auto _ : state)
        benchmark::DoNotOptimize(p.PredictError(x, {}));
}
BENCHMARK(BM_TreePredict);

void
BM_EmaPredict(benchmark::State& state)
{
    predict::EmaDetector p;
    const std::vector<double> out{0.5, 0.6};
    for (auto _ : state)
        benchmark::DoNotOptimize(p.PredictError({}, out));
}
BENCHMARK(BM_EmaPredict);

void
BM_NpuInvoke(benchmark::State& state)
{
    Rng rng(7);
    nn::Mlp mlp(nn::Topology::Parse("9->8->1"));
    mlp.RandomizeWeights(&rng);
    npu::Npu npu;
    npu.Configure(mlp);
    const std::vector<double> in(9, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(npu.Invoke(in));
}
BENCHMARK(BM_NpuInvoke);

void
BM_MlpForward(benchmark::State& state)
{
    Rng rng(7);
    nn::Mlp mlp(nn::Topology::Parse("9->8->1"));
    mlp.RandomizeWeights(&rng);
    const std::vector<double> in(9, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(mlp.Forward(in));
}
BENCHMARK(BM_MlpForward);

void
BM_KernelExact(benchmark::State& state)
{
    const auto bench = apps::MakeBenchmark(
        state.range(0) == 0 ? "sobel"
                            : (state.range(0) == 1 ? "blackscholes"
                                                   : "jmeint"));
    const auto inputs = bench->TestInputs();
    std::vector<double> out(bench->NumOutputs());
    size_t i = 0;
    for (auto _ : state) {
        bench->RunExact(inputs[i % inputs.size()].data(), out.data());
        benchmark::DoNotOptimize(out.data());
        ++i;
    }
}
BENCHMARK(BM_KernelExact)->Arg(0)->Arg(1)->Arg(2);

void
BM_LinearTrain(benchmark::State& state)
{
    const Dataset d = ErrorData(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        predict::LinearErrorPredictor p;
        p.Train(d);
        benchmark::DoNotOptimize(p.Weights().data());
    }
}
BENCHMARK(BM_LinearTrain)->Arg(500)->Arg(2000);

void
BM_TreeTrain(benchmark::State& state)
{
    const Dataset d = ErrorData(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        predict::TreeErrorPredictor p;
        p.Train(d);
        benchmark::DoNotOptimize(p.NumNodes());
    }
}
BENCHMARK(BM_TreeTrain)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
