/**
 * @file
 * Regenerates Figure 1: the typical cumulative distribution of
 * per-element approximation errors. The paper's sketch shows ~80% of
 * elements with small (<10%) errors and a long tail of large ones;
 * this binary prints the measured CDF for every benchmark under the
 * unchecked Rumba-topology accelerator.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/statistics.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    // CDF sampled at fixed element-error levels (percent).
    const std::vector<double> levels = {1,  2,  5,  10, 15, 20,
                                        30, 50, 75, 100};
    std::vector<std::string> headers = {"Application"};
    for (double l : levels)
        headers.push_back("<=" + Table::Num(l, 0) + "%");
    Table table(std::move(headers));

    for (const auto& exp : experiments) {
        const auto& errors = exp->TrueErrors();
        std::vector<std::string> row = {exp->Bench().Info().name};
        for (double level : levels) {
            const size_t below = static_cast<size_t>(std::count_if(
                errors.begin(), errors.end(), [level](double e) {
                    return e * 100.0 <= level;
                }));
            row.push_back(Table::Num(
                100.0 * static_cast<double>(below) /
                    static_cast<double>(errors.size()),
                1));
        }
        table.AddRow(std::move(row));
    }
    benchutil::Emit(table,
                    "Figure 1: CDF of per-element approximation errors "
                    "(% of elements at or below each error level)",
                    csv_dir, "fig01_error_cdf");

    // The paper's qualitative claim: most elements have small errors,
    // a few have large ones.
    double small_sum = 0.0, large_sum = 0.0;
    for (const auto& exp : experiments) {
        const auto& errors = exp->TrueErrors();
        const double n = static_cast<double>(errors.size());
        small_sum += 100.0 *
                     static_cast<double>(std::count_if(
                         errors.begin(), errors.end(),
                         [](double e) { return e <= 0.10; })) /
                     n;
        large_sum += 100.0 *
                     static_cast<double>(std::count_if(
                         errors.begin(), errors.end(),
                         [](double e) { return e > 0.20; })) /
                     n;
    }
    std::printf("\nAverage across applications: %.1f%% of elements have "
                "errors <= 10%%,\n%.1f%% have errors > 20%% (the long "
                "tail Rumba targets).\n",
                small_sum / 7.0, large_sum / 7.0);
    return 0;
}
