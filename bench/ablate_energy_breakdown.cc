/**
 * @file
 * Energy-accounting transparency bench (the McPAT-substitute's
 * equivalent of a per-structure report): for every application it
 * breaks the baseline CPU's per-iteration dynamic energy into
 * microarchitectural structures, and decomposes the Rumba region
 * energy (treeErrors at 90% TOQ) into accelerator, checker, CPU
 * recovery and idle components — showing *where* the savings come
 * from and where Rumba spends them.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/energy_model.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    // Per-structure CPU baseline breakdown.
    Table cpu_table({"Application", "Frontend/ROB", "INT exec",
                     "FP exec", "LSU+L1d", "Branch",
                     "Total nJ/iter (dynamic)"});
    const sim::EnergyModel energy{sim::EnergyParams()};
    for (const auto& exp : experiments) {
        const auto b = energy.CpuBreakdown(exp->KernelOps());
        auto pct = [&](double v) {
            return Table::Num(100.0 * v / b.total_nj, 1) + "%";
        };
        cpu_table.AddRow({exp->Bench().Info().name, pct(b.frontend_nj),
                          pct(b.int_exec_nj), pct(b.fp_exec_nj),
                          pct(b.lsu_nj), pct(b.branch_nj),
                          Table::Num(b.total_nj, 2)});
    }
    benchutil::Emit(cpu_table,
                    "Baseline CPU per-iteration dynamic energy by "
                    "structure (McPAT-style report)",
                    csv_dir, "ablate_energy_cpu_breakdown");

    // Rumba region energy decomposition at the 90% target.
    Table region({"Application", "NPU dyn+static", "Checker",
                  "CPU recovery (dyn+busy)", "CPU idle static",
                  "Region total uJ"});
    for (const auto& exp : experiments) {
        const auto report = exp->ReportAtTargetError(
            core::Scheme::kTree, benchutil::kTargetErrorPct);
        const auto& costs = report.costs;
        const double n = static_cast<double>(exp->NumElements());
        const double fixes = static_cast<double>(report.fixes);

        // Recompute the components the way SystemModel charges them.
        const sim::CheckerCost chk =
            exp->CheckerCost(core::Scheme::kTree);
        const double iter_dyn = energy.CpuDynamicNj(exp->KernelOps());
        const double cpu_iter_ns =
            costs.baseline_region_ns / n;  // modeled ns per iteration.
        const double recovery_nj =
            fixes * iter_dyn +
            energy.CpuBusyStaticNj(fixes * cpu_iter_ns);
        const double idle_nj = energy.CpuIdleStaticNj(std::max(
            0.0, costs.scheme_region_ns - costs.recovery_ns));
        const double checker_nj =
            energy.CheckerDynamicNj(chk, n) +
            energy.CheckerStaticNj(costs.scheme_region_ns);
        const double npu_nj = costs.scheme_region_nj - recovery_nj -
                              idle_nj - checker_nj;

        auto pct = [&](double v) {
            return Table::Num(100.0 * v / costs.scheme_region_nj, 1) +
                   "%";
        };
        region.AddRow({exp->Bench().Info().name, pct(npu_nj),
                       pct(checker_nj), pct(recovery_nj),
                       pct(idle_nj),
                       Table::Num(costs.scheme_region_nj / 1e3, 1)});
    }
    benchutil::Emit(region,
                    "Rumba (treeErrors @ 90% TOQ) region energy "
                    "decomposition",
                    csv_dir, "ablate_energy_region_breakdown");

    std::printf("\nReading: per-uop pipeline overhead dominates CPU "
                "energy (the accelerator's whole\nadvantage); in the "
                "Rumba region, checker energy is negligible — the "
                "savings loss\nrelative to the unchecked NPU is almost "
                "entirely CPU re-execution plus idle time.\n");
    return 0;
}
