/**
 * @file
 * Regenerates Figure 2: two images with the *same* 10% average error
 * but very different perceptual quality — (b) 10% of pixels wrong by
 * 100%, vs (c) all pixels wrong by 10%. Prints distribution
 * statistics (and PSNR) for both, and writes the three PGM images
 * next to the binary for visual inspection.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/imagegen.h"
#include "common/random.h"
#include "common/statistics.h"

using namespace rumba;

namespace {

double
Psnr(const GrayImage& ref, const GrayImage& img)
{
    double mse = 0.0;
    for (size_t i = 0; i < ref.Data().size(); ++i) {
        const double d = ref.Data()[i] - img.Data()[i];
        mse += d * d;
    }
    mse /= static_cast<double>(ref.Data().size());
    return 10.0 * std::log10(1.0 / mse);
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const size_t kSize = 256;
    const GrayImage original = GenerateSceneImage(kSize, kSize, 0xF16);

    // (b) concentrated: 10% of pixels at 100% error.
    GrayImage concentrated = original;
    Rng rng(0xF162);
    size_t flipped = 0;
    for (auto& p : concentrated.MutableData()) {
        if (rng.Chance(0.10)) {
            p = p >= 0.5 ? p - 1.0 : p + 1.0;  // fully wrong pixel.
            ++flipped;
        }
    }
    concentrated.Clamp();

    // (c) spread: every pixel off by 10% of full scale.
    GrayImage spread = original;
    Rng rng2(0xF163);
    for (auto& p : spread.MutableData())
        p += rng2.Chance(0.5) ? 0.10 : -0.10;
    spread.Clamp();

    const double mean_b = original.MeanAbsDiff(concentrated);
    const double mean_c = original.MeanAbsDiff(spread);

    auto large_fraction = [&](const GrayImage& img) {
        size_t large = 0;
        for (size_t i = 0; i < img.Data().size(); ++i) {
            if (std::fabs(img.Data()[i] - original.Data()[i]) > 0.2)
                ++large;
        }
        return 100.0 * static_cast<double>(large) /
               static_cast<double>(img.Data().size());
    };

    Table table({"Image", "Mean abs error", "Avg quality %",
                 "Pixels w/ >20% error", "PSNR (dB)"});
    table.AddRow({"(a) original", "0.00", "100.0", "0.0%", "inf"});
    table.AddRow({"(b) 10% pixels at ~100% error",
                  Table::Num(mean_b, 3),
                  Table::Num(100.0 * (1.0 - mean_b), 1),
                  Table::Num(large_fraction(concentrated), 1) + "%",
                  Table::Num(Psnr(original, concentrated), 1)});
    table.AddRow({"(c) all pixels at 10% error", Table::Num(mean_c, 3),
                  Table::Num(100.0 * (1.0 - mean_c), 1),
                  Table::Num(large_fraction(spread), 1) + "%",
                  Table::Num(Psnr(original, spread), 1)});
    benchutil::Emit(table,
                    "Figure 2: identical average error, different "
                    "perceptual damage",
                    csv_dir, "fig02_error_distribution");

    original.WritePgm("fig02_a_original.pgm");
    concentrated.WritePgm("fig02_b_concentrated.pgm");
    spread.WritePgm("fig02_c_spread.pgm");
    std::printf("\nWrote fig02_{a,b,c}_*.pgm. Both corrupted images "
                "average ~90%% quality,\nbut (b)'s errors are "
                "concentrated in few badly-wrong pixels (lower PSNR,\n"
                "visible speckle) — exactly the tail Rumba removes.\n");
    return 0;
}
