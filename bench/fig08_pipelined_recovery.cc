/**
 * @file
 * Regenerates Figure 8: the CPU re-computing flagged iterations while
 * the accelerator continues executing. Uses the paper's own example —
 * checks fire for iterations 0, 2, 5 and 6 with a 2x-faster
 * accelerator — and renders the exact schedule as an ASCII timeline,
 * then repeats it with a window of a real detector's fire pattern.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/overlap_sim.h"
#include "sim/cpu_model.h"

using namespace rumba;

namespace {

/** Render accelerator and CPU lanes as ASCII Gantt rows. */
void
RenderGantt(const std::vector<core::ElementTrace>& trace,
            uint64_t cycles_per_char)
{
    uint64_t horizon = 0;
    for (const auto& t : trace)
        horizon = std::max({horizon, t.accel_end, t.cpu_end});
    const size_t width =
        static_cast<size_t>(horizon / cycles_per_char) + 1;

    std::string accel(width, '.');
    std::string cpu(width, '.');
    auto put = [&](std::string* lane, uint64_t from, uint64_t to,
                   char symbol) {
        for (uint64_t c = from / cycles_per_char;
             c < (to + cycles_per_char - 1) / cycles_per_char &&
             c < width;
             ++c) {
            (*lane)[static_cast<size_t>(c)] = symbol;
        }
    };
    for (size_t i = 0; i < trace.size(); ++i) {
        const char symbol =
            static_cast<char>('0' + static_cast<int>(i % 10));
        put(&accel, trace[i].accel_start, trace[i].accel_end, symbol);
        if (trace[i].fired)
            put(&cpu, trace[i].cpu_start, trace[i].cpu_end, symbol);
    }
    std::printf("  accelerator |%s|\n  CPU (fixes) |%s|\n",
                accel.c_str(), cpu.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);

    // The paper's example: fires at iterations 0, 2, 5 and 6; the
    // accelerator is 2x faster than exact re-execution.
    std::printf("\n== Figure 8: the paper's example (fires at 0, 2, 5, "
                "6; accelerator 2x faster) ==\n");
    std::vector<char> mask(8, 0);
    mask[0] = mask[2] = mask[5] = mask[6] = 1;
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    cfg.cpu_cycles_per_fix = 20;
    std::vector<core::ElementTrace> trace;
    const auto res = core::SimulateOverlap(mask, cfg, &trace);
    RenderGantt(trace, 5);
    std::printf("  total %lu cycles; accelerator stalls %lu; CPU busy "
                "%.0f%% of the run\n",
                static_cast<unsigned long>(res.total_cycles),
                static_cast<unsigned long>(res.accel_stall_cycles),
                100.0 * res.CpuUtilization());

    // A real window: inversek2j's treeErrors fire pattern at 90% TOQ.
    const auto exp =
        benchutil::Prepare("inversek2j", benchutil::PaperConfig());
    const auto fixes = exp->FixSetForTargetError(
        core::Scheme::kTree, benchutil::kTargetErrorPct);
    std::vector<char> window(fixes.begin(), fixes.begin() + 48);
    core::OverlapConfig real_cfg;
    real_cfg.accel_cycles_per_element = exp->RumbaNpuCycles();
    sim::CpuModel cpu(exp->Config().core);
    real_cfg.cpu_cycles_per_fix = static_cast<uint64_t>(
        cpu.Nanoseconds(exp->KernelOps()) *
        exp->Config().pipeline.npu.frequency_ghz);
    std::printf("\n== A real window: inversek2j / treeErrors @ 90%% "
                "TOQ (accel %lu cyc/elem, fix %lu cyc) ==\n",
                static_cast<unsigned long>(
                    real_cfg.accel_cycles_per_element),
                static_cast<unsigned long>(real_cfg.cpu_cycles_per_fix));
    std::vector<core::ElementTrace> real_trace;
    const auto real_res =
        core::SimulateOverlap(window, real_cfg, &real_trace);
    RenderGantt(real_trace, std::max<uint64_t>(
                                1, real_cfg.accel_cycles_per_element / 2));
    std::printf("  total %lu cycles; accelerator stalls %lu; CPU busy "
                "%.0f%% of the run\n",
                static_cast<unsigned long>(real_res.total_cycles),
                static_cast<unsigned long>(real_res.accel_stall_cycles),
                100.0 * real_res.CpuUtilization());

    // The same window replayed with two *real* threads: the calling
    // thread streams elements and pushes fired ones into a bounded
    // blocking queue; a recovery thread re-executes them exactly.
    // Under RUMBA_TRACE_OUT the two lanes appear as separate thread
    // tracks in the Chrome/Perfetto timeline.
    const auto& all_inputs = exp->GetPipeline().TestInputs();
    std::vector<std::vector<double>> replay_inputs(
        all_inputs.begin(),
        all_inputs.begin() +
            static_cast<long>(std::min(window.size(), all_inputs.size())));
    std::vector<char> replay_mask(window.begin(),
                                  window.begin() +
                                      static_cast<long>(
                                          replay_inputs.size()));
    core::OverlapReplayConfig replay_cfg;
    replay_cfg.queue_capacity = 4;
    replay_cfg.accel_ns_per_element = 20000;  // 20 us: trace-visible.
    std::vector<std::vector<double>> replay_outputs;
    const auto replay = core::ReplayOverlapThreaded(
        exp->Bench(), replay_inputs, replay_mask, &replay_outputs,
        replay_cfg);
    std::printf("\n== The same window on two real threads (queue depth "
                "%zu, paced %lu ns/elem) ==\n",
                replay_cfg.queue_capacity,
                static_cast<unsigned long>(
                    replay_cfg.accel_ns_per_element));
    std::printf("  %zu elements streamed; recovery thread served %zu "
                "fixes; max queue depth %zu;\n  %zu backpressure waits; "
                "%.2f ms wall clock\n",
                replay.elements, replay.fixes, replay.max_queue_depth,
                replay.push_waits,
                static_cast<double>(replay.wall_ns) / 1e6);
    std::printf("  (set RUMBA_TRACE_OUT=fig08_trace.json to capture "
                "the two lanes as a Perfetto timeline)\n");

    std::printf("\nThe CPU's fixes ride in the accelerator's shadow: "
                "as long as the fire rate stays\nbelow the speed ratio, "
                "recovery costs no wall-clock time (Section 3.3).\n");

    if (!csv_dir.empty()) {
        Table t({"element", "fired", "accel_start", "accel_end",
                 "cpu_start", "cpu_end"});
        for (size_t i = 0; i < real_trace.size(); ++i) {
            const auto& e = real_trace[i];
            t.AddRow({Table::Int(static_cast<long>(i)),
                      e.fired ? "1" : "0",
                      Table::Int(static_cast<long>(e.accel_start)),
                      Table::Int(static_cast<long>(e.accel_end)),
                      Table::Int(static_cast<long>(e.cpu_start)),
                      Table::Int(static_cast<long>(e.cpu_end))});
        }
        benchutil::Emit(t, "Figure 8 trace (real window)", csv_dir,
                        "fig08_trace");
    }
    return 0;
}
