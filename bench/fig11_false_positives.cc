/**
 * @file
 * Regenerates Figure 11: false positives at the 90% target output
 * quality. A false positive is a fired check whose element the oracle
 * would not have spent a fix on; Ideal is zero by construction, and
 * low numbers for linearErrors/treeErrors are what make them
 * practical.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    const auto schemes = core::DetectorSchemes();
    std::vector<std::string> headers = {"Application"};
    for (core::Scheme s : schemes)
        headers.push_back(core::SchemeName(s));
    Table table(std::move(headers));

    std::map<core::Scheme, std::vector<double>> per_scheme;
    for (const auto& exp : experiments) {
        std::vector<std::string> row = {exp->Bench().Info().name};
        for (core::Scheme s : schemes) {
            const auto report = exp->ReportAtTargetError(
                s, benchutil::kTargetErrorPct);
            row.push_back(Table::Num(report.false_positive_pct, 2));
            per_scheme[s].push_back(report.false_positive_pct);
        }
        table.AddRow(std::move(row));
    }
    std::vector<std::string> avg = {"average"};
    for (core::Scheme s : schemes)
        avg.push_back(Table::Num(benchutil::Mean(per_scheme[s]), 2));
    table.AddRow(std::move(avg));

    benchutil::Emit(table,
                    "Figure 11: false positives (% of elements) at 90% "
                    "target output quality (Ideal = 0 by construction)",
                    csv_dir, "fig11_false_positives");

    std::printf("\nPaper shape: Random/Uniform/EMA fire many wasted "
                "checks; linearErrors and\ntreeErrors stay low, making "
                "continuous checking affordable.\n");
    return 0;
}
