#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/benchmark.h"
#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace rumba::benchutil {

core::ExperimentConfig
PaperConfig()
{
    core::ExperimentConfig cfg;
    cfg.pipeline.train_epochs = 120;
    cfg.pipeline.seed = 7;
    return cfg;
}

std::unique_ptr<core::Experiment>
Prepare(const std::string& name, const core::ExperimentConfig& config)
{
    std::fprintf(stderr, "preparing %s ...\n", name.c_str());
    return std::make_unique<core::Experiment>(apps::MakeBenchmark(name),
                                              config);
}

std::vector<std::unique_ptr<core::Experiment>>
PrepareAll(const core::ExperimentConfig& config)
{
    std::vector<std::unique_ptr<core::Experiment>> all;
    for (const auto& name : apps::BenchmarkNames())
        all.push_back(Prepare(name, config));
    return all;
}

std::string
CsvDir(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--csv-dir")
            return argv[i + 1];
    }
    return "";
}

void
Emit(const Table& table, const std::string& title,
     const std::string& csv_dir, const std::string& name)
{
    table.Print(title);
    if (!csv_dir.empty()) {
        const std::string path = csv_dir + "/" + name + ".csv";
        if (!table.WriteCsv(path))
            Warn("could not write %s", path.c_str());
        else
            Inform("wrote %s", path.c_str());
    }
    EmitMetrics(csv_dir, name);
}

void
EmitMetrics(const std::string& csv_dir, const std::string& name)
{
    const obs::RegistrySnapshot snap =
        obs::Registry::Default().Snapshot();

    uint64_t checks = 0, fires = 0, elements = 0, fixes = 0;
    for (const auto& c : snap.counters) {
        if (c.name == "detector.checks")
            checks = c.value;
        else if (c.name == "detector.fires")
            fires = c.value;
        else if (c.name == "runtime.elements")
            elements = c.value;
        else if (c.name == "runtime.fixes")
            fixes = c.value;
    }
    for (const auto& h : snap.histograms) {
        if (h.count == 0)
            continue;
        if (h.name == "npu.invoke_ns" || h.name == "runtime.invocation_ns"
            || h.name == "recovery.drain_ns") {
            Inform("telemetry: %s n=%llu p50=%.0fns p90=%.0fns "
                   "p99=%.0fns",
                   h.name.c_str(),
                   static_cast<unsigned long long>(h.count), h.p50,
                   h.p90, h.p99);
        }
    }
    if (checks > 0) {
        Inform("telemetry: detector fire rate %.2f%% (%llu / %llu "
               "checks)",
               100.0 * static_cast<double>(fires) /
                   static_cast<double>(checks),
               static_cast<unsigned long long>(fires),
               static_cast<unsigned long long>(checks));
    }
    if (elements > 0) {
        Inform("telemetry: fix rate %.2f%% (%llu / %llu elements)",
               100.0 * static_cast<double>(fixes) /
                   static_cast<double>(elements),
               static_cast<unsigned long long>(fixes),
               static_cast<unsigned long long>(elements));
    }

    if (!csv_dir.empty()) {
        const std::string path =
            csv_dir + "/" + name + ".metrics.csv";
        const std::string body =
            "# " + obs::MetadataJsonLine() + "\n" + obs::ToCsv(snap);
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            Warn("could not write %s", path.c_str());
        } else {
            std::fwrite(body.data(), 1, body.size(), f);
            std::fclose(f);
            Inform("wrote %s", path.c_str());
        }
    }
}

double
Mean(const std::vector<double>& values)
{
    RUMBA_CHECK(!values.empty());
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
GeoMean(const std::vector<double>& values)
{
    RUMBA_CHECK(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        RUMBA_CHECK(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace rumba::benchutil
