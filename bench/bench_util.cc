#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/benchmark.h"
#include "common/logging.h"

namespace rumba::benchutil {

core::ExperimentConfig
PaperConfig()
{
    core::ExperimentConfig cfg;
    cfg.pipeline.train_epochs = 120;
    cfg.pipeline.seed = 7;
    return cfg;
}

std::unique_ptr<core::Experiment>
Prepare(const std::string& name, const core::ExperimentConfig& config)
{
    std::fprintf(stderr, "preparing %s ...\n", name.c_str());
    return std::make_unique<core::Experiment>(apps::MakeBenchmark(name),
                                              config);
}

std::vector<std::unique_ptr<core::Experiment>>
PrepareAll(const core::ExperimentConfig& config)
{
    std::vector<std::unique_ptr<core::Experiment>> all;
    for (const auto& name : apps::BenchmarkNames())
        all.push_back(Prepare(name, config));
    return all;
}

std::string
CsvDir(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--csv-dir")
            return argv[i + 1];
    }
    return "";
}

void
Emit(const Table& table, const std::string& title,
     const std::string& csv_dir, const std::string& name)
{
    table.Print(title);
    if (!csv_dir.empty()) {
        const std::string path = csv_dir + "/" + name + ".csv";
        if (!table.WriteCsv(path))
            Warn("could not write %s", path.c_str());
        else
            Inform("wrote %s", path.c_str());
    }
}

double
Mean(const std::vector<double>& values)
{
    RUMBA_CHECK(!values.empty());
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
GeoMean(const std::vector<double>& values)
{
    RUMBA_CHECK(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        RUMBA_CHECK(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace rumba::benchutil
