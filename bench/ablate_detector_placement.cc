/**
 * @file
 * Ablation for Section 3.5: input-based detector placement.
 * Configuration 1 runs the checker *before* the accelerator — fired
 * elements skip the accelerator entirely (energy saved) but every
 * element pays the checker's latency. Configuration 2 (Rumba's
 * choice) runs them concurrently — no latency, but the accelerator
 * burns energy even on elements that will be recomputed. This binary
 * quantifies the trade-off per application at the 90% target quality.
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto experiments =
        benchutil::PrepareAll(benchutil::PaperConfig());

    Table table({"Application", "Fix %", "Cfg2 time (ms)",
                 "Cfg1 time (ms)", "Time overhead %", "Cfg2 energy (uJ)",
                 "Cfg1 energy (uJ)", "Energy saved %"});

    std::vector<double> time_overheads, energy_savings;
    for (const auto& exp : experiments) {
        const auto report = exp->ReportAtTargetError(
            core::Scheme::kLinear, benchutil::kTargetErrorPct);
        const auto checker = exp->CheckerCost(core::Scheme::kLinear);
        const double n = static_cast<double>(exp->NumElements());
        const double fixes = static_cast<double>(report.fixes);
        const double freq = exp->Config().pipeline.npu.frequency_ghz;

        // Configuration 2 (what Report models): checker in parallel.
        const double cfg2_ns = report.costs.scheme_region_ns;
        const double cfg2_nj = report.costs.scheme_region_nj;

        // Configuration 1: the checker precedes the accelerator.
        //  * latency: every element serializes checker + accelerator,
        //    except fired elements, which skip the accelerator.
        const double chk_ns = checker.cycles / freq;
        const double acc_ns =
            static_cast<double>(exp->RumbaNpuCycles()) / freq;
        const double accel_stream_ns =
            n * chk_ns + (n - fixes) * acc_ns;
        const double cpu_ns =
            report.costs.recovery_ns;  // unchanged fix stream.
        const double cfg1_ns = std::max(accel_stream_ns, cpu_ns);
        //  * energy: accelerator dynamic energy only for unfired
        //    elements; everything else as in configuration 2.
        const double accel_dyn_per_elem =
            exp->NpuReport().costs.scheme_region_nj /
            n;  // upper-bound proxy for one invocation's share.
        const double saved_nj = fixes * accel_dyn_per_elem * 0.5;
        const double cfg1_nj = cfg2_nj - saved_nj;

        const double overhead =
            100.0 * (cfg1_ns - cfg2_ns) / cfg2_ns;
        const double saving = 100.0 * saved_nj / cfg2_nj;
        time_overheads.push_back(overhead);
        energy_savings.push_back(saving);

        table.AddRow({exp->Bench().Info().name,
                      Table::Num(100.0 * report.fix_fraction, 1),
                      Table::Num(cfg2_ns / 1e6, 3),
                      Table::Num(cfg1_ns / 1e6, 3),
                      Table::Num(overhead, 1),
                      Table::Num(cfg2_nj / 1e3, 1),
                      Table::Num(cfg1_nj / 1e3, 1),
                      Table::Num(saving, 1)});
    }
    benchutil::Emit(table,
                    "Section 3.5 ablation: detector placement "
                    "Configuration 1 (checker first) vs 2 (parallel)",
                    csv_dir, "ablate_detector_placement");

    std::printf("\nAverage: Configuration 1 saves %.1f%% region energy "
                "by skipping doomed accelerator\ninvocations but adds "
                "%.1f%% region latency. Rumba picks Configuration 2 to "
                "protect\nperformance, as the paper does.\n",
                benchutil::Mean(energy_savings),
                benchutil::Mean(time_overheads));
    return 0;
}
