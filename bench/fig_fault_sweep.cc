/**
 * @file
 * Fault sweep: delivered output error and energy saving as a function
 * of the injected NPU fault rate, with the circuit breaker on vs off.
 *
 * The runtime is trained once and redeployed from its artifact into
 * every sweep cell; each cell arms a seeded NaN fault plan and serves
 * the same batches, so cells differ only in fault rate and breaker
 * policy. The containment story this regenerates: the detector's
 * non-finite guard keeps NaNs out of the delivered outputs at any
 * rate, while the breaker trades energy saving for exact-only safety
 * once faults persist — and hands the accelerator back via canary
 * probes when the plan is mild enough to pass them.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/runtime.h"
#include "fault/injector.h"
#include "fault/plan.h"

using namespace rumba;

namespace {

constexpr size_t kBatch = 250;
constexpr size_t kBatches = 24;

struct Cell {
    double delivered_error_pct = 0.0;
    double fix_pct = 0.0;
    double exact_pct = 0.0;
    size_t trips = 0;
    size_t closes = 0;
    double energy_saving = 0.0;
};

Cell
RunCell(const core::Artifact& artifact, const core::RuntimeConfig& base,
        double fault_rate, bool breaker_on, uint64_t seed)
{
    core::RuntimeConfig config = base;
    config.breaker.enabled = breaker_on;
    config.breaker.trip_after = 2;
    config.breaker.open_invocations = 2;
    config.breaker.close_after = 2;
    core::RumbaRuntime runtime(artifact, config);

    fault::FaultInjector& injector = fault::FaultInjector::Default();
    if (fault_rate > 0.0) {
        fault::FaultPlan plan;
        std::string error;
        char spec[64];
        std::snprintf(spec, sizeof(spec), "seed=%llu;npu.output_nan=%g",
                      static_cast<unsigned long long>(seed),
                      fault_rate);
        if (!fault::FaultPlan::Parse(spec, &plan, &error)) {
            std::fprintf(stderr, "bad plan %s: %s\n", spec,
                         error.c_str());
            std::exit(1);
        }
        injector.Arm(plan);
    } else {
        injector.Disarm();
    }

    const auto& inputs = runtime.Bench().TestInputs();
    const size_t in_w = runtime.Bench().NumInputs();
    std::vector<double> batch_flat;
    batch_flat.reserve(kBatch * in_w);
    std::vector<double> out(kBatch * runtime.Bench().NumOutputs());
    size_t exact_elements = 0;
    for (size_t b = 0; b < kBatches; ++b) {
        batch_flat.clear();
        for (size_t k = 0; k < kBatch; ++k) {
            const auto& row = inputs[(b * kBatch + k) % inputs.size()];
            batch_flat.insert(batch_flat.end(), row.begin(), row.end());
        }
        exact_elements +=
            runtime
                .ProcessInvocation(core::BatchView(batch_flat, in_w),
                                   out.data())
                .exact_elements;
    }
    injector.Disarm();

    const core::RunSummary& summary = runtime.Summary();
    Cell cell;
    cell.delivered_error_pct = summary.MeanOutputErrorPct();
    cell.fix_pct = 100.0 * summary.FixFraction();
    cell.exact_pct = 100.0 * static_cast<double>(exact_elements) /
                     static_cast<double>(summary.elements);
    cell.trips = runtime.Breaker().Trips();
    cell.closes = runtime.Breaker().Closes();
    cell.energy_saving = summary.EnergySaving();
    return cell;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);

    core::RuntimeConfig config;
    config.pipeline.train_epochs = 120;
    config.checker = core::Scheme::kTree;
    config.tuner.mode = core::TuningMode::kToq;
    config.tuner.target_error_pct = benchutil::kTargetErrorPct;

    std::fprintf(stderr, "[fig_fault_sweep] training inversek2j once "
                         "for all sweep cells...\n");
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               config);
    const core::Artifact artifact = trained.ExportArtifact();

    const std::vector<double> rates = {0.0, 0.005, 0.01, 0.02, 0.05};
    Table table({"NaN fault rate %", "Breaker", "Delivered err %",
                 "Fix %", "Exact-only %", "Trips", "Closes",
                 "Energy saving x"});
    for (size_t r = 0; r < rates.size(); ++r) {
        for (bool breaker_on : {false, true}) {
            const Cell cell =
                RunCell(artifact, config, rates[r], breaker_on,
                        /*seed=*/1000 + r);
            table.AddRow({Table::Num(100.0 * rates[r], 1),
                          breaker_on ? "on" : "off",
                          Table::Num(cell.delivered_error_pct, 2),
                          Table::Num(cell.fix_pct, 1),
                          Table::Num(cell.exact_pct, 1),
                          Table::Int(static_cast<long>(cell.trips)),
                          Table::Int(static_cast<long>(cell.closes)),
                          Table::Num(cell.energy_saving, 2)});
        }
    }
    benchutil::Emit(table,
                    "Fault sweep: injected NaN rate vs delivered "
                    "error, breaker off/on (inversek2j)",
                    csv_dir, "fig_fault_sweep");

    std::printf("\nThe non-finite guard holds delivered error inside "
                "the TOQ target at every rate;\nthe breaker converts "
                "persistent fault storms into exact-only execution "
                "(energy\nsaving -> 1x) and hands the accelerator "
                "back once canary probes run clean.\n");
    return 0;
}
