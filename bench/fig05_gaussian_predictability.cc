/**
 * @file
 * Regenerates Figure 5 and the Section 3.2 EVP-vs-EEP study: a
 * Gaussian-shaped kernel is approximated by a small network; the
 * resulting errors are concentrated on particular inputs (hence
 * predictable), and predicting the error *directly* (EEP) tracks the
 * true error markedly better than predicting the value and
 * differencing (EVP) — the paper measures mean distances of 1 vs 2.5.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/dataset.h"
#include "common/random.h"
#include "nn/trainer.h"
#include "npu/npu.h"
#include "predict/evp.h"
#include "predict/linear.h"
#include "predict/tree.h"

using namespace rumba;

namespace {

double
GaussianPdf(double x)
{
    return std::exp(-0.5 * x * x);
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);

    // Train a deliberately small network on the Gaussian so the
    // residual error has structure (largest near the peak/shoulders).
    // Half the samples concentrate near the bump so the network
    // actually learns it instead of the flat tails.
    Rng rng(0x6A55);
    Dataset train(1, 1);
    for (int i = 0; i < 6000; ++i) {
        double x = (i % 2 == 0) ? rng.Uniform(-16.0, 16.0)
                                : rng.Gaussian(0.0, 3.0);
        x = std::clamp(x, -16.0, 16.0);
        train.Add({(x + 16.0) / 32.0}, {GaussianPdf(x)});
    }
    nn::Mlp mlp(nn::Topology::Parse("1->4->1"));
    nn::TrainConfig tc;
    tc.epochs = 300;
    tc.patience = 60;
    nn::Train(&mlp, train, tc);

    npu::Npu accel;
    accel.Configure(mlp);

    // Test sweep for the figure's series.
    Table series({"x", "exact", "approx", "abs error"});
    Dataset exact_data(1, 1);   // for EVP (x -> exact output).
    Dataset error_data(1, 1);   // for EEP (x -> true error).
    std::vector<std::vector<double>> inputs;
    std::vector<std::vector<double>> approx_outs;
    std::vector<double> true_errors;
    for (int i = 0; i <= 640; ++i) {
        const double x = -16.0 + 32.0 * i / 640.0;
        const double norm_x = (x + 16.0) / 32.0;
        const double exact = GaussianPdf(x);
        const double approx = accel.Invoke({norm_x})[0];
        const double err = std::fabs(approx - exact);
        if (i % 32 == 0) {
            series.AddRow({Table::Num(x, 1), Table::Num(exact, 4),
                           Table::Num(approx, 4), Table::Num(err, 4)});
        }
        exact_data.Add({norm_x}, {exact});
        error_data.Add({norm_x}, {err});
        inputs.push_back({norm_x});
        approx_outs.push_back({approx});
        true_errors.push_back(err);
    }
    benchutil::Emit(series,
                    "Figure 5: exact output, approximate output and "
                    "approximation error",
                    csv_dir, "fig05_gaussian_series");

    // EEP vs EVP: train both on the sweep, measure mean distance of
    // the predicted error from the true error.
    predict::LinearErrorPredictor eep_linear;
    eep_linear.Train(error_data);
    predict::TreeErrorPredictor eep_tree;
    eep_tree.Train(error_data);
    predict::ValuePredictionError evp;
    evp.Train(exact_data);

    double eep_lin_dist = 0.0, eep_tree_dist = 0.0, evp_dist = 0.0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        eep_lin_dist += std::fabs(
            eep_linear.PredictError(inputs[i], approx_outs[i]) -
            true_errors[i]);
        eep_tree_dist += std::fabs(
            eep_tree.PredictError(inputs[i], approx_outs[i]) -
            true_errors[i]);
        evp_dist +=
            std::fabs(evp.PredictError(inputs[i], approx_outs[i]) -
                      true_errors[i]);
    }
    const double n = static_cast<double>(inputs.size());
    eep_lin_dist /= n;
    eep_tree_dist /= n;
    evp_dist /= n;

    // The paper's comparison holds the prediction model fixed (a
    // linear model both ways): EEP regresses the error directly, EVP
    // regresses the value and differences. Normalize to EEP(linear).
    Table cmp({"Method", "Mean distance to true error",
               "Normalized (EEP linear = 1)"});
    cmp.AddRow({"EEP (linear)", Table::Num(eep_lin_dist, 5), "1.00"});
    cmp.AddRow({"EVP (linear)", Table::Num(evp_dist, 5),
                Table::Num(evp_dist / eep_lin_dist, 2)});
    cmp.AddRow({"EEP (tree)", Table::Num(eep_tree_dist, 5),
                Table::Num(eep_tree_dist / eep_lin_dist, 2)});
    benchutil::Emit(cmp,
                    "Section 3.2: EEP vs EVP mean distance to the true "
                    "error, same linear model (paper: 1 vs 2.5)",
                    csv_dir, "fig05_eep_vs_evp");
    return 0;
}
