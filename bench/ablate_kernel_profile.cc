/**
 * @file
 * Kernel-profile report: the per-iteration dynamic instruction mixes
 * the timing and energy models consume, extracted by executing each
 * benchmark's real kernel on the counting scalar type (the gem5
 * substitute). Prints the mix, the modeled CPU cycles/ns per
 * iteration, and the accelerator's invocation cost side by side —
 * the raw ingredients of Figures 14/15.
 */

#include <cstdio>

#include "apps/benchmark.h"
#include "bench_util.h"
#include "npu/schedule.h"
#include "sim/cpu_model.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const sim::CpuModel cpu;
    const double npu_ghz = npu::NpuConfig().frequency_ghz;

    Table table({"Application", "FP add", "FP mul", "FP div", "sqrt",
                 "INT", "loads", "stores", "branches", "CPU cyc/iter",
                 "CPU ns/iter", "NPU cyc/inv", "kernel speedup"});
    for (const auto& name : apps::BenchmarkNames()) {
        auto bench = apps::MakeBenchmark(name);
        const sim::OpCounts ops = bench->ProfileKernel(128);
        const auto cycles = cpu.Cycles(ops);
        const double cpu_ns = cpu.Nanoseconds(ops);
        const npu::Schedule sched =
            npu::BuildSchedule(bench->Info().rumba_topology, 8);
        const double npu_ns =
            static_cast<double>(sched.total_cycles) / npu_ghz;
        table.AddRow({name, Table::Num(ops.fp_add, 1),
                      Table::Num(ops.fp_mul, 1),
                      Table::Num(ops.fp_div, 1),
                      Table::Num(ops.fp_sqrt, 1),
                      Table::Num(ops.int_op + ops.int_mul, 1),
                      Table::Num(ops.load, 1), Table::Num(ops.store, 1),
                      Table::Num(ops.branch, 1),
                      Table::Num(cycles.total, 1),
                      Table::Num(cpu_ns, 1),
                      Table::Int(static_cast<long>(sched.total_cycles)),
                      Table::Num(cpu_ns / npu_ns, 2)});
    }
    benchutil::Emit(table,
                    "Kernel instruction mixes (counting-scalar profile) "
                    "and modeled per-iteration costs",
                    csv_dir, "ablate_kernel_profile");

    std::printf("\nThese mixes are measured by instantiating the *same* "
                "kernel source with the\ncounting scalar type — no "
                "hand-estimated instruction counts anywhere in the "
                "model.\nTranscendental calls expand to libm-scale "
                "bundles (see sim/opcount.h).\n");
    return 0;
}
