/**
 * @file
 * Regenerates Figure 18: the accelerator and the CPU working in
 * tandem. For a 200-element window it prints each element's
 * (tree-)predicted error, the tuning threshold reaching the 10%
 * target error, whether the check fired, and the resulting CPU
 * activity — the fraction of elements the CPU re-computes while the
 * accelerator streams on. A tiered-mode column shows what the
 * three-tier recovery policy (core/recovery_policy.h) would do with
 * each fired check instead: mid-band predictions take the cheap
 * compensate tier, only the worst tail still re-computes.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/recovery_policy.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto exp =
        benchutil::Prepare("inversek2j", benchutil::PaperConfig());

    // Threshold achieving the 10% target with treeErrors.
    const auto report = exp->ReportAtTargetError(
        core::Scheme::kTree, benchutil::kTargetErrorPct);
    const double threshold = report.threshold;
    const auto& scores = exp->Scores(core::Scheme::kTree);

    // Tiered mode: the same fired set split by the default
    // three-tier policy at its deploy-time boundary (the online
    // budget tuning needs live audited feedback, so this trace shows
    // the initial band).
    core::RecoveryPolicyConfig tiered_config;
    tiered_config.compensation = true;
    const core::RecoveryPolicy policy(tiered_config,
                                      benchutil::kTargetErrorPct);

    const size_t kWindow = 200;
    Table table({"Element", "Predicted error", "Check fired",
                 "CPU busy", "Tiered"});
    size_t fired = 0;
    size_t tiered_recompute = 0;
    for (size_t i = 0; i < kWindow && i < scores.size(); ++i) {
        const bool fire = scores[i] >= threshold;
        fired += fire;
        const core::RecoveryDecision decision =
            policy.Decide(i, scores[i], /*non_finite=*/false,
                          threshold);
        const bool reexec =
            fire && decision.tier == core::RecoveryTier::kReexecute;
        tiered_recompute += reexec;
        if (i % 5 == 0 || fire) {
            table.AddRow({Table::Int(static_cast<long>(i)),
                          Table::Num(scores[i], 4), fire ? "1" : "0",
                          fire ? "recompute" : "-",
                          !fire      ? "-"
                          : reexec   ? "recompute"
                                     : "compensate"});
        }
    }
    benchutil::Emit(table,
                    "Figure 18: detector trace over 200 elements "
                    "(every 5th element plus all fired checks)",
                    csv_dir, "fig18_cpu_activity");

    const double fraction =
        100.0 * static_cast<double>(fired) / static_cast<double>(kWindow);
    const double cpu_ns =
        exp->Config().core.frequency_ghz > 0
            ? report.costs.recovery_ns / report.costs.npu_ns
            : 0.0;
    std::printf("\nTuning threshold for the 10%% target: %.4f. In this "
                "window the check fired for\n%zu of %zu elements "
                "(%.1f%%); whole-run CPU recovery occupies %.2fx of the "
                "accelerator's\ntime (< 1 means the CPU keeps up — the "
                "paper's example fires for 15%% at a 0.33\nthreshold "
                "with a 6.67x-faster accelerator).\n",
                threshold, fired, kWindow, fraction, cpu_ns);
    std::printf("\nTiered mode (boundary at %.1fx the threshold) "
                "re-computes only %zu of the %zu\nfired elements and "
                "compensates the other %zu, so the exact CPU's share "
                "of this\nwindow falls from %.1f%% to %.1f%%.\n",
                policy.Multiple(), tiered_recompute, fired,
                fired - tiered_recompute, fraction,
                100.0 * static_cast<double>(tiered_recompute) /
                    static_cast<double>(kWindow));
    return 0;
}
