/**
 * @file
 * Regenerates Figure 18: the accelerator and the CPU working in
 * tandem. For a 200-element window it prints each element's
 * (tree-)predicted error, the tuning threshold reaching the 10%
 * target error, whether the check fired, and the resulting CPU
 * activity — the fraction of elements the CPU re-computes while the
 * accelerator streams on.
 */

#include <cstdio>

#include "bench_util.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);
    const auto exp =
        benchutil::Prepare("inversek2j", benchutil::PaperConfig());

    // Threshold achieving the 10% target with treeErrors.
    const auto report = exp->ReportAtTargetError(
        core::Scheme::kTree, benchutil::kTargetErrorPct);
    const double threshold = report.threshold;
    const auto& scores = exp->Scores(core::Scheme::kTree);

    const size_t kWindow = 200;
    Table table({"Element", "Predicted error", "Check fired",
                 "CPU busy"});
    size_t fired = 0;
    for (size_t i = 0; i < kWindow && i < scores.size(); ++i) {
        const bool fire = scores[i] >= threshold;
        fired += fire;
        if (i % 5 == 0 || fire) {
            table.AddRow({Table::Int(static_cast<long>(i)),
                          Table::Num(scores[i], 4), fire ? "1" : "0",
                          fire ? "recompute" : "-"});
        }
    }
    benchutil::Emit(table,
                    "Figure 18: detector trace over 200 elements "
                    "(every 5th element plus all fired checks)",
                    csv_dir, "fig18_cpu_activity");

    const double fraction =
        100.0 * static_cast<double>(fired) / static_cast<double>(kWindow);
    const double cpu_ns =
        exp->Config().core.frequency_ghz > 0
            ? report.costs.recovery_ns / report.costs.npu_ns
            : 0.0;
    std::printf("\nTuning threshold for the 10%% target: %.4f. In this "
                "window the check fired for\n%zu of %zu elements "
                "(%.1f%%); whole-run CPU recovery occupies %.2fx of the "
                "accelerator's\ntime (< 1 means the CPU keeps up — the "
                "paper's example fires for 15%% at a 0.33\nthreshold "
                "with a 6.67x-faster accelerator).\n",
                threshold, fired, kWindow, fraction, cpu_ns);
    return 0;
}
