/**
 * @file
 * Ablation of the accelerator trainer's topology search (Section 4:
 * "We find the best NN configuration by searching the NN topology
 * space ... the smallest NN that does not produce excessive errors").
 * For each application this bench runs the bounded search (<= 2
 * hidden layers, <= 32 neurons) on the training data and reports
 * every candidate's validation error and cost next to the Table 1
 * topology the experiments use.
 */

#include <cstdio>

#include "apps/benchmark.h"
#include "bench_util.h"
#include "common/dataset.h"
#include "nn/topology_search.h"

using namespace rumba;

int
main(int argc, char** argv)
{
    const std::string csv_dir = benchutil::CsvDir(argc, argv);

    Table summary({"Application", "Table 1 (Rumba)", "Search pick",
                   "Pick val MSE", "Pick MACs"});
    for (const auto& name : apps::BenchmarkNames()) {
        auto bench = apps::MakeBenchmark(name);
        // jpeg's 64->... candidates are heavy; subsample training
        // elements to keep the sweep quick.
        auto inputs = bench->TrainInputs();
        if (inputs.size() > 3000)
            inputs.resize(3000);
        Dataset raw = bench->MakeDataset(inputs);
        Normalizer in_norm, out_norm;
        in_norm.FitInputs(raw);
        out_norm.FitTargets(raw);
        Dataset norm(bench->NumInputs(), bench->NumOutputs());
        for (size_t s = 0; s < raw.Size(); ++s)
            norm.Add(in_norm.Apply(raw.Input(s)),
                     out_norm.Apply(raw.Target(s)));

        nn::SearchConfig cfg;
        cfg.hidden_candidates = {{2}, {4}, {8}, {16},
                                 {4, 4}, {8, 4}, {8, 8}, {16, 8}};
        cfg.train.epochs = 60;
        std::fprintf(stderr, "searching %s ...\n", name.c_str());
        const nn::SearchResult result = nn::SearchTopology(norm, cfg);

        Table detail({"Candidate", "Validation MSE", "MACs"});
        for (const auto& entry : result.entries) {
            detail.AddRow({entry.topology.ToString(),
                           Table::Num(entry.validation_mse, 6),
                           Table::Int(static_cast<long>(entry.macs))});
        }
        benchutil::Emit(detail,
                        "Topology search candidates for " + name,
                        csv_dir, "ablate_topology_" + name);

        double pick_mse = 0.0;
        for (const auto& entry : result.entries) {
            if (entry.topology == result.best.GetTopology())
                pick_mse = entry.validation_mse;
        }
        summary.AddRow(
            {name, bench->Info().rumba_topology.ToString(),
             result.best.GetTopology().ToString(),
             Table::Num(pick_mse, 6),
             Table::Int(static_cast<long>(
                 result.best.GetTopology().MacsPerInvocation()))});
    }
    benchutil::Emit(summary,
                    "Topology search: smallest qualifying network per "
                    "application vs Table 1",
                    csv_dir, "ablate_topology_summary");

    std::printf("\nThe search picks the cheapest candidate within the "
                "error slack — Rumba's error\ncorrection is what makes "
                "shipping the small pick safe.\n");
    return 0;
}
