#!/usr/bin/env bash
# Tier-1 verification, three ways: a plain build, an ASan/UBSan build,
# and a TSan build of the threaded paths (RUMBA_SANITIZE wires any
# -fsanitize= spelling through the whole tree). The plain build also
# gates telemetry against the checked-in baselines with rumba-stat.
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j
    ctest --test-dir "$dir" --output-on-failure -j
}

echo "==> plain build + tests"
run_suite build

echo "==> telemetry regression gate (rumba-stat vs bench/baselines)"
RUMBA_METRICS_OUT=build/quickstart.metrics.jsonl \
    ./build/examples/quickstart > /dev/null
# Counters are seed-deterministic; the tolerance absorbs float noise
# in gauges across compilers. Latency histograms are skipped by
# default (machine-dependent).
./build/tools/rumba-stat diff \
    bench/baselines/quickstart.metrics.jsonl \
    build/quickstart.metrics.jsonl --tol 0.02

if [[ "${1:-}" != "--skip-sanitize" ]]; then
    echo "==> sanitized build + tests (address,undefined)"
    run_suite build-sanitize -DRUMBA_SANITIZE=address,undefined

    # TSan: the threaded paths — snapshot streamer, span collector,
    # and the two-thread recovery replay — under real concurrency.
    echo "==> thread-sanitized build + threading tests (thread)"
    cmake -B build-tsan -S . -DRUMBA_SANITIZE=thread
    cmake --build build-tsan -j
    ctest --test-dir build-tsan --output-on-failure -j \
        -R '^(obs_test|extensions_test)$'
fi

echo "==> ci.sh: all suites passed"
