#!/usr/bin/env bash
# Tier-1 verification, three ways: a plain build, an ASan/UBSan build,
# and a TSan build of the threaded paths (RUMBA_SANITIZE wires any
# -fsanitize= spelling through the whole tree). The plain build also
# gates telemetry against the checked-in baselines with rumba-stat.
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j
    ctest --test-dir "$dir" --output-on-failure -j
}

echo "==> plain build + tests"
run_suite build

echo "==> telemetry regression gate (rumba-stat vs bench/baselines)"
RUMBA_METRICS_OUT=build/quickstart.metrics.jsonl \
    ./build/examples/quickstart > /dev/null
# Counters are seed-deterministic; the tolerance absorbs float noise
# in gauges across compilers. Latency histograms are skipped by
# default (machine-dependent).
./build/tools/rumba-stat diff \
    bench/baselines/quickstart.metrics.jsonl \
    build/quickstart.metrics.jsonl --tol 0.02
# Serving-layer gate: the bench's --gate mode submits synchronously
# (one request in flight), so the serve.* counters are reproducible.
RUMBA_METRICS_OUT=build/serve_throughput.metrics.jsonl \
    ./build/bench/serve_throughput --gate > /dev/null
./build/tools/rumba-stat diff \
    bench/baselines/serve_throughput.metrics.jsonl \
    build/serve_throughput.metrics.jsonl --tol 0.02
# Tiered-recovery gate: the three-tier example streams and serves
# with compensation on; the baseline pins the recovery.tier.* split,
# the boundary-tuner feedback counters, and the audited-quality
# outcome (zero true TOQ violations with the compensate tier live).
RUMBA_METRICS_OUT=build/recovery_tiers.metrics.jsonl \
    ./build/examples/tiered_recovery > /dev/null
./build/tools/rumba-stat diff \
    bench/baselines/recovery_tiers.metrics.jsonl \
    build/recovery_tiers.metrics.jsonl --tol 0.02

echo "==> live observability gate (scrape endpoint + flight recorder)"
# Run the deploy example with the scrape server up and a flight-dump
# directory, scrape it live mid-run, and assert the breaker-trip
# drill left flight-recorder artifacts that join back to traces.
obs_port=19841
flight_dir=build/flight-dumps
rm -rf "$flight_dir" && mkdir -p "$flight_dir"
rm -f build/deploy_audit.jsonl build/deploy_profile.folded
RUMBA_METRICS_PORT=$obs_port RUMBA_FLIGHT_DIR="$flight_dir" \
    RUMBA_OBS_LINGER_MS=8000 \
    RUMBA_AUDIT_SAMPLE_N=1 RUMBA_AUDIT_OUT=build/deploy_audit.jsonl \
    RUMBA_PROFILE_HZ=499 RUMBA_PROFILE_OUT=build/deploy_profile.folded \
    ./build/examples/deploy > build/deploy_obs.log 2>&1 &
deploy_pid=$!
# The server comes up at main(); wait for it, then for the serving
# engine's /statusz provider (live during the obs drill + linger).
for _ in $(seq 1 150); do
    if curl -sf "http://127.0.0.1:$obs_port/healthz" \
        > /dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -sf "http://127.0.0.1:$obs_port/healthz" | grep -q '^ok$'
statusz=""
for _ in $(seq 1 300); do
    statusz=$(curl -sf "http://127.0.0.1:$obs_port/statusz" \
        2>/dev/null || true)
    if [[ "$statusz" == *'"shards"'* ]]; then break; fi
    sleep 0.2
done
[[ "$statusz" == *'"tuner_mode":"toq"'* ]] ||
    { echo "statusz never showed the serving engine"; exit 1; }
# Live exposition: valid Prometheus text carrying the serve.* and
# slo.* series, both straight off the socket and from a saved copy.
curl -sf "http://127.0.0.1:$obs_port/metrics" > build/deploy_scrape.prom
grep -q '^rumba_serve_submitted_total' build/deploy_scrape.prom
grep -q '^rumba_slo_serve_quality_fast_burn_rate' build/deploy_scrape.prom
grep -q '^rumba_serve_shard0_threshold' build/deploy_scrape.prom
# The ground-truth auditor publishes to the same registry: the scrape
# must carry a nonzero audited-sample count and the true (measured,
# not predicted) TOQ-violation rate.
awk '/^rumba_audit_samples_total/ { if ($NF + 0 > 0) found = 1 }
     END { exit !found }' build/deploy_scrape.prom
grep -q '^rumba_audit_true_toq_violation_rate' build/deploy_scrape.prom
# Tiered recovery in the live binary: the deploy config enables the
# compensate tier, so the scrape must show all three recovery tiers
# with a nonzero compensated share.
awk '/^rumba_recovery_tier_compensate_total/ { if ($NF + 0 > 0) f = 1 }
     END { exit !f }' build/deploy_scrape.prom
awk '/^rumba_recovery_tier_reexecute_total/ { if ($NF + 0 > 0) f = 1 }
     END { exit !f }' build/deploy_scrape.prom
# Build identity must be scrapeable next to the metrics.
curl -sf "http://127.0.0.1:$obs_port/buildz" | grep -q '"git_describe"'
# Cost profiler: the engine must have attributed real CPU to the
# device and predict-check stages, and the online efficiency
# estimator must publish a finite, positive speedup.
awk '/^rumba_cpu_stage_seconds_device_total/ { if ($NF + 0 > 0) f = 1 }
     END { exit !f }' build/deploy_scrape.prom
awk '/^rumba_cpu_stage_seconds_predict_check_total/ \
     { if ($NF + 0 > 0) f = 1 } END { exit !f }' build/deploy_scrape.prom
awk '/^rumba_efficiency_speedup_estimate/ \
     { v = $NF + 0; if (v > 0 && v < 1e12) f = 1 }
     END { exit !f }' build/deploy_scrape.prom
# /profilez: live stage shares + efficiency estimate, gated against
# the checked-in baseline (speedup lower-is-worse, energy ratio
# higher-is-worse; the tolerance absorbs drill-phase timing).
curl -sf "http://127.0.0.1:$obs_port/profilez" \
    > build/deploy_profilez.json
grep -q '"schema_version":1' build/deploy_profilez.json
./build/tools/rumba-stat profile build/deploy_profilez.json \
    --baseline bench/baselines/deploy_profilez.json --tol 0.2 \
    > /dev/null
# scrape --check on a live target also validates /buildz + /profilez.
./build/tools/rumba-stat scrape "http://127.0.0.1:$obs_port/metrics" \
    --check > /dev/null
./build/tools/rumba-stat scrape build/deploy_scrape.prom --check
wait "$deploy_pid"
# The sampling profiler must have written a parseable folded-stacks
# dump ("stack count" lines) carrying per-shard stage frames. (The
# deploy's device bursts are microseconds long, so the sampler lands
# in the workers' queue_wait frames, not the device ones.)
awk 'NF < 2 || $NF + 0 <= 0 { bad = 1 } END { exit bad }' \
    build/deploy_profile.folded
grep -q '^shard0;' build/deploy_profile.folded
# The NaN storm must have tripped breakers and dumped flight records
# carrying request trace ids.
ls "$flight_dir"/flight-shard*.jsonl > /dev/null
grep -q '"reason":"breaker_open"' "$flight_dir"/flight-shard*.jsonl
grep -q '"trace_id"' "$flight_dir"/flight-shard*.jsonl
# The audit drill must have left a labeled ground-truth dump that the
# CLI can summarize (per-invocation "audit" lines + per-element
# labeled "audit_element" lines).
grep -q '"type":"audit"' build/deploy_audit.jsonl
grep -q '"type":"audit_element"' build/deploy_audit.jsonl
./build/tools/rumba-stat audit build/deploy_audit.jsonl > /dev/null

echo "==> overload scenario matrix (open-loop chaos + admission gate)"
# Drives the serving engine with the open-loop load generator across
# arrival shapes x fault plans x admission policies and asserts the
# overload invariants (no silent loss, expired work never executes,
# gold survives 2x bursts, admission-off demonstrably fails). Exits
# nonzero on any FAIL/ERROR; the rumba-stat gate then catches any
# scenario the checked-in baseline passed going missing or failing.
./build/tools/rumba_scenarios --out build/scenarios.jsonl
./build/tools/rumba-stat scenarios build/scenarios.jsonl \
    --baseline bench/baselines/scenarios.jsonl > /dev/null

if [[ "${1:-}" != "--skip-sanitize" ]]; then
    echo "==> sanitized build + tests (address,undefined)"
    run_suite build-sanitize -DRUMBA_SANITIZE=address,undefined

    # Fault-injection matrix: replay canned fault plans through the
    # fault suite and the deploy drill on the ASan/UBSan build, so
    # every injected NaN / bit flip / stall also runs under the
    # sanitizers. Plans are seeded — failures replay exactly.
    echo "==> fault-injection matrix (ASan/UBSan)"
    fault_plans=(
        'seed=101;npu.output_nan=0.02'
        'seed=102;npu.bitflip=0.01;npu.output_inf=0.005'
        'seed=103;queue.stall=1;checker.mispredict=0.1'
        'seed=104;npu.lut=0.02;npu.output_stuck=0.01:0.5'
    )
    for plan in "${fault_plans[@]}"; do
        echo "   -- RUMBA_FAULT_PLAN='${plan}'"
        RUMBA_FAULT_PLAN="$plan" \
            ctest --test-dir build-sanitize --output-on-failure \
            -R '^fault_test$' > /dev/null
    done
    RUMBA_FAULT_PLAN='seed=105;npu.output_nan=0.02' \
        ./build-sanitize/examples/deploy > /dev/null

    # Serving engine smoke under ASan/UBSan: concurrent submit /
    # drain / shutdown across two client threads.
    ./build-sanitize/bench/serve_throughput --smoke > /dev/null

    # TSan: the threaded paths — snapshot streamer, span collector,
    # the two-thread recovery replay, the queue/breaker paths the
    # fault suite drives, the sharded serving engine, the background
    # ground-truth audit pool, and the sampling profiler racing
    # engine shutdown — under real concurrency.
    echo "==> thread-sanitized build + threading tests (thread)"
    cmake -B build-tsan -S . -DRUMBA_SANITIZE=thread
    cmake --build build-tsan -j
    # -R must precede the bare -j: ctest would otherwise eat the
    # regex as -j's value and run the whole suite.
    ctest --test-dir build-tsan --output-on-failure \
        -R '^(obs_test|extensions_test|fault_test|serve_test|audit_test|profiler_test)$' \
        -j
fi

echo "==> ci.sh: all suites passed"
