#!/usr/bin/env bash
# Tier-1 verification, twice: a plain build, then an ASan/UBSan build
# (RUMBA_SANITIZE wires -fsanitize flags through the whole tree).
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

run_suite() {
    local dir="$1"; shift
    cmake -B "$dir" -S . "$@"
    cmake --build "$dir" -j
    ctest --test-dir "$dir" --output-on-failure -j
}

echo "==> plain build + tests"
run_suite build

if [[ "${1:-}" != "--skip-sanitize" ]]; then
    echo "==> sanitized build + tests (address,undefined)"
    run_suite build-sanitize -DRUMBA_SANITIZE=address,undefined
fi

echo "==> ci.sh: all suites passed"
