/**
 * @file
 * rumba-stat: offline companion to the obs/ subsystem. Reads the
 * JSONL dumps the runtime emits (RUMBA_METRICS_OUT metric dumps and
 * RUMBA_STREAM_OUT sample streams), summarizes one run, and diffs two
 * runs against per-metric relative tolerances so CI can gate merges
 * on telemetry regressions.
 *
 *   rumba-stat summary <dump.jsonl>
 *   rumba-stat diff <baseline.jsonl> <candidate.jsonl>
 *       [--tol <rel>] [--tol-metric name=<rel>] [--include-latency]
 *   rumba-stat scrape <target> [--check] [--baseline <dump>]
 *       [--tol <rel>] [--tol-metric name=<rel>] [--include-latency]
 *   rumba-stat profile <target> [--baseline <profilez.json>]
 *       [--tol <rel>]
 *
 * scrape fetches the Prometheus text exposition a live rumba process
 * serves at /metrics (obs/http_exporter.h) — target is
 * http://host:port[/path], host:port, or a saved exposition file —
 * recovers the dotted registry names from the name="..." labels, and
 * either validates the format (--check — live targets additionally
 * validate the /buildz and /profilez JSON endpoints), diffs against a
 * baseline metrics dump with the same tolerance machinery as `diff`
 * (--baseline; histogram quantiles are not in the exposition, so only
 * counts are compared), or prints a summary. profile reads /profilez
 * (live or saved) and can gate the speedup/energy estimates against
 * a baseline body.
 *
 * Exit codes: 0 = ok / no regression, 1 = regression detected,
 * 2 = usage, load, fetch, or format-validation error (including
 * schema-version mismatch).
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON-line parser: handles exactly the flat (one level of
// nesting for stream samples) objects our own exporters emit. Not a
// general JSON parser; unknown constructs fail the line loudly.
// ---------------------------------------------------------------------------

/** One parsed JSON scalar. */
struct JsonValue {
    enum class Kind { kNumber, kString, kBool } kind = Kind::kNumber;
    double number = 0.0;
    std::string text;
};

/** A parsed line: scalars at the top level plus "prefix.key" for the
 *  one nested level stream samples use ("counters", "gauges",
 *  "trace"). */
using JsonObject = std::map<std::string, JsonValue>;

void
SkipSpace(const std::string& s, size_t* i)
{
    while (*i < s.size() &&
           (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\r'))
        ++*i;
}

bool
ParseString(const std::string& s, size_t* i, std::string* out)
{
    if (*i >= s.size() || s[*i] != '"')
        return false;
    ++*i;
    out->clear();
    while (*i < s.size() && s[*i] != '"') {
        char c = s[*i];
        if (c == '\\' && *i + 1 < s.size()) {
            ++*i;
            switch (s[*i]) {
              case '"': c = '"'; break;
              case '\\': c = '\\'; break;
              case '/': c = '/'; break;
              case 'b': c = '\b'; break;
              case 'f': c = '\f'; break;
              case 'n': c = '\n'; break;
              case 'r': c = '\r'; break;
              case 't': c = '\t'; break;
              case 'u': {
                // Only \u00XX is ever emitted; decode the low byte.
                if (*i + 4 >= s.size())
                    return false;
                c = static_cast<char>(
                    std::strtol(s.substr(*i + 1, 4).c_str(), nullptr,
                                16));
                *i += 4;
                break;
              }
              default: return false;
            }
        }
        out->push_back(c);
        ++*i;
    }
    if (*i >= s.size())
        return false;
    ++*i;  // closing quote.
    return true;
}

bool
ParseValue(const std::string& s, size_t* i, const std::string& prefix,
           const std::string& key, JsonObject* out);

bool
ParseObject(const std::string& s, size_t* i, const std::string& prefix,
            JsonObject* out)
{
    if (*i >= s.size() || s[*i] != '{')
        return false;
    ++*i;
    SkipSpace(s, i);
    if (*i < s.size() && s[*i] == '}') {
        ++*i;
        return true;
    }
    for (;;) {
        SkipSpace(s, i);
        std::string key;
        if (!ParseString(s, i, &key))
            return false;
        SkipSpace(s, i);
        if (*i >= s.size() || s[*i] != ':')
            return false;
        ++*i;
        SkipSpace(s, i);
        if (!ParseValue(s, i, prefix, key, out))
            return false;
        SkipSpace(s, i);
        if (*i >= s.size())
            return false;
        if (s[*i] == ',') {
            ++*i;
            continue;
        }
        if (s[*i] == '}') {
            ++*i;
            return true;
        }
        return false;
    }
}

bool
ParseValue(const std::string& s, size_t* i, const std::string& prefix,
           const std::string& key, JsonObject* out)
{
    const std::string full = prefix.empty() ? key : prefix + "." + key;
    JsonValue v;
    if (*i >= s.size())
        return false;
    const char c = s[*i];
    if (c == '"') {
        v.kind = JsonValue::Kind::kString;
        if (!ParseString(s, i, &v.text))
            return false;
    } else if (c == '{') {
        // One nested level: flatten as "key.subkey".
        return ParseObject(s, i, full, out);
    } else if (s.compare(*i, 4, "true") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.number = 1.0;
        *i += 4;
    } else if (s.compare(*i, 5, "false") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.number = 0.0;
        *i += 5;
    } else {
        char* end = nullptr;
        v.number = std::strtod(s.c_str() + *i, &end);
        if (end == s.c_str() + *i)
            return false;
        *i = static_cast<size_t>(end - s.c_str());
    }
    (*out)[full] = v;
    return true;
}

bool
ParseJsonLine(const std::string& line, JsonObject* out)
{
    size_t i = 0;
    SkipSpace(line, &i);
    if (!ParseObject(line, &i, "", out))
        return false;
    SkipSpace(line, &i);
    return i == line.size() || line[i] == '\n';
}

// ---------------------------------------------------------------------------
// Dump model: one loaded metrics or stream file.
// ---------------------------------------------------------------------------

/** Histogram summary row from a metrics dump. */
struct HistogramStats {
    double count = 0, sum = 0, min = 0, max = 0, p50 = 0, p90 = 0,
           p99 = 0;
};

/** Everything rumba-stat extracts from one dump file. */
struct Dump {
    std::string path;
    bool has_meta = false;
    long schema_version = -1;
    std::string wall_time, hostname, build_type, sanitizers;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
    /** Threshold trajectory: per-invocation from trace lines, or
     *  per-sample from stream lines — whichever the file carries. */
    std::vector<double> thresholds;
    size_t samples = 0;      ///< stream "sample" lines seen.
    size_t trace_lines = 0;  ///< metrics "trace" lines seen.
};

double
Field(const JsonObject& obj, const std::string& key, double fallback = 0)
{
    const auto it = obj.find(key);
    return it == obj.end() ? fallback : it->second.number;
}

std::string
TextField(const JsonObject& obj, const std::string& key)
{
    const auto it = obj.find(key);
    return it == obj.end() ? "" : it->second.text;
}

/** One "type,name,value,sum,min,max,p50,p90,p99,notes" CSV row. */
bool
LoadCsvRow(const std::string& line, Dump* dump)
{
    std::vector<std::string> cells;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell.push_back(c);
        }
    }
    cells.push_back(cell);
    if (cells.size() < 3)
        return false;
    const std::string& type = cells[0];
    if (type == "type")
        return true;  // header row.
    const std::string& name = cells[1];
    if (type == "counter") {
        dump->counters[name] = std::strtod(cells[2].c_str(), nullptr);
    } else if (type == "gauge") {
        dump->gauges[name] = std::strtod(cells[2].c_str(), nullptr);
    } else if (type == "histogram" && cells.size() >= 9) {
        HistogramStats h;
        h.count = std::strtod(cells[2].c_str(), nullptr);
        h.sum = std::strtod(cells[3].c_str(), nullptr);
        h.min = std::strtod(cells[4].c_str(), nullptr);
        h.max = std::strtod(cells[5].c_str(), nullptr);
        h.p50 = std::strtod(cells[6].c_str(), nullptr);
        h.p90 = std::strtod(cells[7].c_str(), nullptr);
        h.p99 = std::strtod(cells[8].c_str(), nullptr);
        dump->histograms[name] = h;
    }
    return true;  // unknown row types are forward-compatible.
}

/** Load a metrics/stream JSONL dump or a ".csv" metrics dump.
 *  Returns false on I/O or parse failure (diagnostic on stderr). */
bool
LoadDump(const std::string& path, Dump* dump)
{
    dump->path = path;
    const bool csv =
        path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rumba-stat: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        // CSV dumps carry the meta header as a "# " comment.
        if (line[0] == '#') {
            const size_t brace = line.find('{');
            if (brace == std::string::npos)
                continue;
            line = line.substr(brace);
        } else if (csv) {
            if (!LoadCsvRow(line, dump)) {
                std::fprintf(stderr,
                             "rumba-stat: %s:%zu: bad CSV row\n",
                             path.c_str(), lineno);
                return false;
            }
            continue;
        }
        JsonObject obj;
        if (!ParseJsonLine(line, &obj)) {
            std::fprintf(stderr, "rumba-stat: %s:%zu: bad JSON line\n",
                         path.c_str(), lineno);
            return false;
        }
        const std::string type = TextField(obj, "type");
        if (type == "meta") {
            dump->has_meta = true;
            dump->schema_version =
                static_cast<long>(Field(obj, "schema_version", -1));
            dump->wall_time = TextField(obj, "wall_time");
            dump->hostname = TextField(obj, "hostname");
            dump->build_type = TextField(obj, "build_type");
            dump->sanitizers = TextField(obj, "sanitizers");
        } else if (type == "counter") {
            dump->counters[TextField(obj, "name")] =
                Field(obj, "value");
        } else if (type == "gauge") {
            dump->gauges[TextField(obj, "name")] = Field(obj, "value");
        } else if (type == "histogram") {
            HistogramStats h;
            h.count = Field(obj, "count");
            h.sum = Field(obj, "sum");
            h.min = Field(obj, "min");
            h.max = Field(obj, "max");
            h.p50 = Field(obj, "p50");
            h.p90 = Field(obj, "p90");
            h.p99 = Field(obj, "p99");
            dump->histograms[TextField(obj, "name")] = h;
        } else if (type == "trace") {
            ++dump->trace_lines;
            dump->thresholds.push_back(Field(obj, "threshold"));
        } else if (type == "sample") {
            ++dump->samples;
            // Stream samples carry counter *deltas*; accumulate them
            // into run totals. Gauges are instantaneous; keep latest.
            for (const auto& [key, value] : obj) {
                if (key.rfind("counters.", 0) == 0)
                    dump->counters[key.substr(9)] += value.number;
                else if (key.rfind("gauges.", 0) == 0)
                    dump->gauges[key.substr(7)] = value.number;
            }
            const auto t = obj.find("gauges.tuner.threshold");
            if (t != obj.end())
                dump->thresholds.push_back(t->second.number);
            else if (obj.count("trace.threshold"))
                dump->thresholds.push_back(
                    Field(obj, "trace.threshold"));
        }
        // Unknown types are forward-compatible: ignored.
    }
    return true;
}

// ---------------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------------

void
PrintThresholdTrajectory(const Dump& dump)
{
    if (dump.thresholds.empty()) {
        std::printf("threshold trajectory: (none recorded)\n");
        return;
    }
    double lo = dump.thresholds.front(), hi = lo;
    std::set<double> distinct;
    size_t moves = 0;
    for (size_t i = 0; i < dump.thresholds.size(); ++i) {
        const double t = dump.thresholds[i];
        lo = std::min(lo, t);
        hi = std::max(hi, t);
        distinct.insert(t);
        if (i > 0 && t != dump.thresholds[i - 1])
            ++moves;
    }
    std::printf("threshold trajectory: %zu points, %zu distinct, %zu "
                "moves\n  first %.6g -> last %.6g   (range [%.6g, "
                "%.6g])\n",
                dump.thresholds.size(), distinct.size(), moves,
                dump.thresholds.front(), dump.thresholds.back(), lo,
                hi);
}

int
CmdSummary(const Dump& dump)
{
    std::printf("== %s ==\n", dump.path.c_str());
    if (dump.has_meta) {
        std::printf("meta: schema v%ld, %s on %s, build %s%s%s\n",
                    dump.schema_version, dump.wall_time.c_str(),
                    dump.hostname.c_str(), dump.build_type.c_str(),
                    dump.sanitizers.empty() ? "" : ", sanitizers ",
                    dump.sanitizers.c_str());
    } else {
        std::printf("meta: (no header — pre-v2 dump)\n");
    }
    std::printf("%zu counters, %zu gauges, %zu histograms, %zu trace "
                "lines, %zu stream samples\n\n",
                dump.counters.size(), dump.gauges.size(),
                dump.histograms.size(), dump.trace_lines,
                dump.samples);
    for (const auto& [name, value] : dump.counters)
        std::printf("  counter    %-32s %.0f\n", name.c_str(), value);
    for (const auto& [name, value] : dump.gauges)
        std::printf("  gauge      %-32s %.6g\n", name.c_str(), value);
    for (const auto& [name, h] : dump.histograms) {
        std::printf("  histogram  %-32s n=%-8.0f p50=%-12.6g "
                    "p99=%.6g\n",
                    name.c_str(), h.count, h.p50, h.p99);
    }
    std::printf("\n");
    PrintThresholdTrajectory(dump);
    return 0;
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/** Tolerances: a default plus per-metric overrides. */
struct DiffOptions {
    double default_tol = 0.0;  ///< relative; 0 = exact.
    std::map<std::string, double> per_metric;
    bool include_latency = false;
    /** Compare only histogram counts (scrape mode: the exposition
     *  carries buckets, not the exporter's quantile estimates). */
    bool histogram_counts_only = false;
};

double
TolFor(const DiffOptions& opts, const std::string& name)
{
    const auto it = opts.per_metric.find(name);
    return it == opts.per_metric.end() ? opts.default_tol : it->second;
}

/** True when the metric measures wall time (machine-dependent). */
bool
IsLatencyMetric(const std::string& name)
{
    return name.size() > 3 &&
           name.compare(name.size() - 3, 3, "_ns") == 0;
}

bool
WithinTolerance(double base, double cand, double tol)
{
    if (base == cand)
        return true;
    const double mag = std::max(std::fabs(base), std::fabs(cand));
    return std::fabs(cand - base) <= tol * mag;
}

/** Compare one metric; prints and counts a regression when outside
 *  tolerance. */
void
CheckValue(const std::string& kind, const std::string& name,
           double base, double cand, const DiffOptions& opts,
           size_t* compared, size_t* regressions)
{
    ++*compared;
    const double tol = TolFor(opts, name);
    if (WithinTolerance(base, cand, tol))
        return;
    ++*regressions;
    const double mag = std::max(std::fabs(base), std::fabs(cand));
    std::printf("REGRESSION  %-9s %-32s %.6g -> %.6g  (rel %.3g > tol "
                "%.3g)\n",
                kind.c_str(), name.c_str(), base, cand,
                mag == 0 ? 0 : std::fabs(cand - base) / mag, tol);
}

int
CmdDiff(const Dump& base, const Dump& cand, const DiffOptions& opts)
{
    // Refuse to compare dumps written by incompatible exporters.
    if (base.has_meta && cand.has_meta &&
        base.schema_version != cand.schema_version) {
        std::fprintf(stderr,
                     "rumba-stat: schema mismatch: %s is v%ld, %s is "
                     "v%ld — refusing to diff\n",
                     base.path.c_str(), base.schema_version,
                     cand.path.c_str(), cand.schema_version);
        return 2;
    }
    if (base.has_meta && cand.has_meta &&
        base.sanitizers != cand.sanitizers) {
        std::printf("note: sanitizer configs differ (\"%s\" vs "
                    "\"%s\") — latency metrics are not comparable\n",
                    base.sanitizers.c_str(), cand.sanitizers.c_str());
    }

    size_t compared = 0, regressions = 0, skipped_latency = 0;
    std::vector<std::string> missing;

    for (const auto& [name, value] : base.counters) {
        const auto it = cand.counters.find(name);
        if (it == cand.counters.end()) {
            missing.push_back("counter " + name);
            continue;
        }
        CheckValue("counter", name, value, it->second, opts, &compared,
                   &regressions);
    }
    for (const auto& [name, value] : base.gauges) {
        const auto it = cand.gauges.find(name);
        if (it == cand.gauges.end()) {
            missing.push_back("gauge " + name);
            continue;
        }
        CheckValue("gauge", name, value, it->second, opts, &compared,
                   &regressions);
    }
    for (const auto& [name, h] : base.histograms) {
        const auto it = cand.histograms.find(name);
        if (it == cand.histograms.end()) {
            missing.push_back("histogram " + name);
            continue;
        }
        // Event counts are deterministic; the value distribution of a
        // latency histogram is machine noise unless asked for.
        CheckValue("histogram", name + ".count", h.count,
                   it->second.count, opts, &compared, &regressions);
        if (opts.histogram_counts_only)
            continue;
        if (IsLatencyMetric(name) && !opts.include_latency) {
            ++skipped_latency;
            continue;
        }
        if (!IsLatencyMetric(name) || opts.include_latency) {
            CheckValue("histogram", name + ".p50", h.p50,
                       it->second.p50, opts, &compared, &regressions);
        }
    }

    for (const auto& name : missing)
        std::printf("REGRESSION  missing in candidate: %s\n",
                    name.c_str());
    regressions += missing.size();

    std::printf("%s: %zu metrics compared, %zu regressions, %zu "
                "latency distributions skipped\n",
                regressions == 0 ? "PASS" : "FAIL", compared,
                regressions, skipped_latency);
    return regressions == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// scrape: fetch / parse / validate Prometheus text exposition.
// ---------------------------------------------------------------------------

/** Blocking HTTP GET (own tiny client — rumba-stat links nothing from
 *  src/). Supports dotted-quad hosts and "localhost". */
bool
FetchHttp(const std::string& host, int port, const std::string& path,
          std::string* body)
{
    const std::string addr_text =
        host == "localhost" ? "127.0.0.1" : host;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, addr_text.c_str(), &addr.sin_addr) != 1) {
        std::fprintf(stderr,
                     "rumba-stat: cannot parse host '%s' (numeric IPv4 "
                     "or 'localhost' only)\n",
                     host.c_str());
        return false;
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
        std::fprintf(stderr, "rumba-stat: cannot connect to %s:%d\n",
                     host.c_str(), port);
        close(fd);
        return false;
    }
    const std::string request = "GET " + path +
                                " HTTP/1.0\r\nHost: " + host +
                                "\r\nConnection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = send(fd, request.data() + sent,
                               request.size() - sent, 0);
        if (n <= 0) {
            close(fd);
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    close(fd);
    const size_t sp = response.find(' ');
    if (response.compare(0, 5, "HTTP/") != 0 ||
        sp == std::string::npos) {
        std::fprintf(stderr, "rumba-stat: malformed HTTP response\n");
        return false;
    }
    const int status = std::atoi(response.c_str() + sp + 1);
    if (status != 200) {
        std::fprintf(stderr, "rumba-stat: HTTP %d from %s:%d%s\n",
                     status, host.c_str(), port, path.c_str());
        return false;
    }
    size_t head_end = response.find("\r\n\r\n");
    size_t skip = 4;
    if (head_end == std::string::npos) {
        head_end = response.find("\n\n");
        skip = 2;
    }
    *body = head_end == std::string::npos
                ? ""
                : response.substr(head_end + skip);
    return true;
}

/** One parsed exposition sample. */
struct PromSample {
    std::string prom_name;  ///< e.g. rumba_serve_submitted_total.
    std::string dotted;     ///< recovered name="..." label ("" = none).
    std::string le;         ///< le="..." label (histogram buckets).
    double value = 0.0;
};

/** Everything parsed from one exposition body. */
struct PromScrape {
    std::map<std::string, std::string> types;  ///< prom name -> TYPE.
    std::vector<PromSample> samples;
    std::vector<std::string> errors;  ///< format violations found.
};

/** Parse `name{label="v",...} value` lines plus # TYPE comments.
 *  Format violations land in scrape->errors (parsing continues). */
void
ParseExposition(const std::string& body, PromScrape* scrape)
{
    std::istringstream in(body);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream comment(line);
            std::string hash, kind, name, type;
            comment >> hash >> kind >> name >> type;
            if (kind == "TYPE" && !name.empty() && !type.empty())
                scrape->types[name] = type;
            continue;
        }
        PromSample sample;
        size_t i = 0;
        while (i < line.size() && line[i] != '{' && line[i] != ' ')
            ++i;
        sample.prom_name = line.substr(0, i);
        if (sample.prom_name.empty()) {
            scrape->errors.push_back("line " + std::to_string(lineno) +
                                     ": empty metric name");
            continue;
        }
        if (i < line.size() && line[i] == '{') {
            const size_t close = line.find('}', i);
            if (close == std::string::npos) {
                scrape->errors.push_back(
                    "line " + std::to_string(lineno) +
                    ": unterminated label set");
                continue;
            }
            // Labels our exporter emits: name="...", le="..." —
            // values never contain '"' (escaped on emit).
            std::string labels = line.substr(i + 1, close - i - 1);
            size_t pos = 0;
            while (pos < labels.size()) {
                const size_t eq = labels.find('=', pos);
                if (eq == std::string::npos)
                    break;
                const std::string key = labels.substr(pos, eq - pos);
                const size_t q1 = labels.find('"', eq);
                const size_t q2 = q1 == std::string::npos
                                      ? q1
                                      : labels.find('"', q1 + 1);
                if (q2 == std::string::npos)
                    break;
                const std::string value =
                    labels.substr(q1 + 1, q2 - q1 - 1);
                if (key == "name")
                    sample.dotted = value;
                else if (key == "le")
                    sample.le = value;
                pos = labels.find(',', q2);
                pos = pos == std::string::npos ? labels.size() : pos + 1;
            }
            i = close + 1;
        }
        while (i < line.size() && line[i] == ' ')
            ++i;
        if (i >= line.size()) {
            scrape->errors.push_back("line " + std::to_string(lineno) +
                                     ": missing sample value");
            continue;
        }
        const std::string value_text = line.substr(i);
        if (value_text == "+Inf") {
            sample.value = HUGE_VAL;
        } else {
            char* end = nullptr;
            sample.value = std::strtod(value_text.c_str(), &end);
            if (end == value_text.c_str() ||
                (*end != '\0' && *end != ' ')) {
                scrape->errors.push_back(
                    "line " + std::to_string(lineno) +
                    ": unparseable value '" + value_text + "'");
                continue;
            }
        }
        scrape->samples.push_back(std::move(sample));
    }
}

/** Strip one of the histogram-series suffixes; "" if none match. */
std::string
StripSuffix(const std::string& name, const char* suffix)
{
    const size_t len = std::strlen(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0)
        return name.substr(0, name.size() - len);
    return "";
}

/** The TYPE'd base series a sample belongs to ("" when undeclared). */
std::string
BaseSeries(const PromScrape& scrape, const std::string& prom_name)
{
    if (scrape.types.count(prom_name))
        return prom_name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string base = StripSuffix(prom_name, suffix);
        if (!base.empty() && scrape.types.count(base))
            return base;
    }
    return "";
}

/** Per-histogram accumulation for validation and Dump conversion. */
struct HistAccum {
    std::vector<std::pair<double, double>> buckets;  ///< (le, cum).
    double sum = 0, count = 0, min = 0, max = 0;
    bool has_count = false;
};

/**
 * Convert a parsed scrape into the Dump model (counters / gauges /
 * histograms keyed by recovered dotted names) and run the format
 * checks: every sample TYPE-declared, histogram buckets cumulative,
 * +Inf bucket == _count. Violations append to scrape->errors.
 */
void
ScrapeToDump(PromScrape* scrape, Dump* dump)
{
    std::map<std::string, HistAccum> hists;  // keyed by dotted name.
    for (const PromSample& s : scrape->samples) {
        const std::string base = BaseSeries(*scrape, s.prom_name);
        if (base.empty()) {
            scrape->errors.push_back("sample '" + s.prom_name +
                                     "' has no # TYPE declaration");
            continue;
        }
        const std::string& type = scrape->types[base];
        const std::string key =
            s.dotted.empty() ? s.prom_name : s.dotted;
        if (type == "counter") {
            dump->counters[key] = s.value;
        } else if (type == "histogram") {
            HistAccum& h = hists[key];
            if (s.prom_name == base + "_bucket") {
                h.buckets.emplace_back(
                    s.le == "+Inf" ? HUGE_VAL
                                   : std::strtod(s.le.c_str(), nullptr),
                    s.value);
            } else if (s.prom_name == base + "_sum") {
                h.sum = s.value;
            } else if (s.prom_name == base + "_count") {
                h.count = s.value;
                h.has_count = true;
            }
        } else if (type == "gauge") {
            // A histogram's companion extrema gauges fold back into
            // its stats; everything else is a plain gauge.
            const std::string min_base = StripSuffix(base, "_min");
            const std::string max_base = StripSuffix(base, "_max");
            if (!min_base.empty() &&
                scrape->types.count(min_base) &&
                scrape->types[min_base] == "histogram") {
                hists[key].min = s.value;
            } else if (!max_base.empty() &&
                       scrape->types.count(max_base) &&
                       scrape->types[max_base] == "histogram") {
                hists[key].max = s.value;
            } else {
                dump->gauges[key] = s.value;
            }
        }
    }
    for (auto& [name, h] : hists) {
        if (!h.has_count) {
            scrape->errors.push_back("histogram '" + name +
                                     "' is missing _count");
        }
        double prev = -1.0;
        bool saw_inf = false;
        for (const auto& [le, cum] : h.buckets) {
            if (cum < prev) {
                scrape->errors.push_back(
                    "histogram '" + name +
                    "' buckets are not cumulative");
                break;
            }
            prev = cum;
            if (le == HUGE_VAL) {
                saw_inf = true;
                if (h.has_count && cum != h.count) {
                    scrape->errors.push_back(
                        "histogram '" + name +
                        "' +Inf bucket != _count");
                }
            }
        }
        if (!saw_inf) {
            scrape->errors.push_back("histogram '" + name +
                                     "' has no +Inf bucket");
        }
        HistogramStats stats;
        stats.count = h.count;
        stats.sum = h.sum;
        stats.min = h.min;
        stats.max = h.max;
        dump->histograms[name] = stats;
    }
}

/**
 * Fetch (or read) the target into @p body. Live HTTP targets
 * (http://host:port[/path] or host:port) default to @p default_path
 * and, when @p host_out / @p port_out are given, report where they
 * connected so callers can fetch sibling endpoints; plain paths read
 * a saved file (host_out stays empty).
 */
bool
FetchTarget(const std::string& target, const char* default_path,
            std::string* body, std::string* host_out = nullptr,
            int* port_out = nullptr)
{
    std::string rest;
    if (target.rfind("http://", 0) == 0)
        rest = target.substr(7);
    else if (target.find(':') != std::string::npos)
        rest = target;
    if (!rest.empty()) {
        std::string path = default_path;
        const size_t slash = rest.find('/');
        if (slash != std::string::npos) {
            path = rest.substr(slash);
            rest.resize(slash);
        }
        const size_t colon = rest.find(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr,
                         "rumba-stat: scrape target needs host:port\n");
            return false;
        }
        const int port = std::atoi(rest.c_str() + colon + 1);
        const std::string host = rest.substr(0, colon);
        if (host_out != nullptr)
            *host_out = host;
        if (port_out != nullptr)
            *port_out = port;
        return FetchHttp(host, port, path, body);
    }
    std::ifstream in(target);
    if (!in) {
        std::fprintf(stderr, "rumba-stat: cannot open %s\n",
                     target.c_str());
        return false;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    *body = contents.str();
    return true;
}

/**
 * Fetch @p path from a live process and validate it: parses as one
 * JSON object (via the same mini parser the dump loader uses, so
 * nested objects flatten to dotted keys) and carries every key in
 * @p required. Returns the number of violations (diagnostics on
 * stderr); parsed keys land in @p out when non-null.
 */
size_t
CheckJsonEndpoint(const std::string& host, int port, const char* path,
                  const std::vector<std::string>& required,
                  JsonObject* out = nullptr)
{
    std::string body;
    if (!FetchHttp(host, port, path, &body)) {
        std::fprintf(stderr, "rumba-stat: cannot fetch %s\n", path);
        return 1;
    }
    JsonObject obj;
    if (!ParseJsonLine(body, &obj)) {
        std::fprintf(stderr, "rumba-stat: %s: malformed JSON\n", path);
        return 1;
    }
    size_t violations = 0;
    for (const std::string& key : required) {
        if (obj.count(key) != 0)
            continue;
        std::fprintf(stderr, "rumba-stat: %s: missing key \"%s\"\n",
                     path, key.c_str());
        ++violations;
    }
    if (out != nullptr)
        *out = std::move(obj);
    return violations;
}

int
CmdScrape(const std::string& target, bool check,
          const std::string& baseline_path, const DiffOptions& opts)
{
    std::string body;
    std::string host;
    int port = 0;
    if (!FetchTarget(target, "/metrics", &body, &host, &port))
        return 2;
    PromScrape scrape;
    ParseExposition(body, &scrape);
    Dump dump;
    dump.path = target;
    ScrapeToDump(&scrape, &dump);
    if (!scrape.errors.empty()) {
        for (const std::string& error : scrape.errors)
            std::fprintf(stderr, "rumba-stat: scrape: %s\n",
                         error.c_str());
        std::printf("FAIL: exposition has %zu format violations "
                    "(%zu samples parsed)\n",
                    scrape.errors.size(), scrape.samples.size());
        return 2;
    }
    if (check) {
        // Live targets also serve JSON diagnostics; validate that
        // /buildz and /profilez are well-formed and carry the keys
        // dashboards key on. File targets only have the exposition.
        size_t json_violations = 0;
        if (!host.empty()) {
            json_violations += CheckJsonEndpoint(
                host, port, "/buildz",
                {"version", "git_describe", "build_type",
                 "schema_version"});
            json_violations += CheckJsonEndpoint(
                host, port, "/profilez",
                {"schema_version", "cpu_seconds.device",
                 "cpu_seconds.predict_check", "cpu_seconds.total",
                 "sampler.hz", "efficiency.speedup_estimate",
                 "efficiency.energy_ratio"});
        }
        if (json_violations > 0) {
            std::printf("FAIL: exposition ok but %zu JSON endpoint "
                        "violations (/buildz, /profilez)\n",
                        json_violations);
            return 2;
        }
        std::printf("OK: %zu samples, %zu counters, %zu gauges, %zu "
                    "histograms, all TYPE-declared, buckets "
                    "cumulative%s\n",
                    scrape.samples.size(), dump.counters.size(),
                    dump.gauges.size(), dump.histograms.size(),
                    host.empty() ? ""
                                 : "; /buildz and /profilez valid");
        return 0;
    }
    if (!baseline_path.empty()) {
        Dump base;
        if (!LoadDump(baseline_path, &base))
            return 2;
        DiffOptions scrape_opts = opts;
        scrape_opts.histogram_counts_only = true;
        return CmdDiff(base, dump, scrape_opts);
    }
    return CmdSummary(dump);
}

// ---------------------------------------------------------------------------
// profile: summarize / gate the live cost profiler (/profilez).
// ---------------------------------------------------------------------------

/** The /profilez keys every valid body carries. */
const std::vector<std::string> kProfilezRequired = {
    "schema_version",
    "cpu_seconds.device",
    "cpu_seconds.predict_check",
    "cpu_seconds.recover",
    "cpu_seconds.total",
    "sampler.running",
    "sampler.hz",
    "sampler.samples",
    "efficiency.speedup_estimate",
    "efficiency.energy_ratio",
    "efficiency.window",
    "invocations",
};

/** Load a /profilez body (live endpoint or saved file) into @p obj;
 *  returns false (diagnostics on stderr) on fetch/parse/schema
 *  failure. */
bool
LoadProfilez(const std::string& target, JsonObject* obj)
{
    std::string body;
    if (!FetchTarget(target, "/profilez", &body))
        return false;
    if (!ParseJsonLine(body, obj)) {
        std::fprintf(stderr, "rumba-stat: %s: malformed JSON\n",
                     target.c_str());
        return false;
    }
    bool ok = true;
    for (const std::string& key : kProfilezRequired) {
        if (obj->count(key) != 0)
            continue;
        std::fprintf(stderr, "rumba-stat: %s: missing key \"%s\"\n",
                     target.c_str(), key.c_str());
        ok = false;
    }
    return ok;
}

/** One efficiency-figure gate: relative move in the worse direction
 *  beyond @p tol counts a regression. */
void
CheckEfficiency(const char* what, double base, double cand,
                bool higher_is_worse, double tol, size_t* regressions)
{
    const double mag = std::max(std::fabs(base), std::fabs(cand));
    const double delta = higher_is_worse ? cand - base : base - cand;
    if (mag == 0.0 || delta <= tol * mag)
        return;
    ++*regressions;
    std::printf("REGRESSION  %-24s %.4g -> %.4g  (moved %.3g > tol "
                "%.3g relative)\n",
                what, base, cand, delta / mag, tol);
}

int
CmdProfile(const std::string& target, const std::string& baseline_path,
           double tol)
{
    JsonObject obj;
    if (!LoadProfilez(target, &obj))
        return 2;

    std::printf("== %s ==\n", target.c_str());
    static const char* kStages[] = {"queue_wait", "device",
                                    "predict_check", "recover",
                                    "merge", "audit", "verify",
                                    "other"};
    const double total = Field(obj, "cpu_seconds.total");
    std::printf("stage CPU attribution (%0.f invocations):\n",
                Field(obj, "invocations"));
    for (const char* stage : kStages) {
        const double sec =
            Field(obj, std::string("cpu_seconds.") + stage);
        if (sec == 0.0)
            continue;
        std::printf("  %-14s %12.6f s  %6.2f%%\n", stage, sec,
                    total > 0 ? 100.0 * sec / total : 0.0);
    }
    std::printf("  %-14s %12.6f s\n", "total", total);
    std::printf("sampler: %s, %.4g Hz, %.0f samples\n",
                Field(obj, "sampler.running") != 0 ? "running"
                                                   : "stopped",
                Field(obj, "sampler.hz"),
                Field(obj, "sampler.samples"));
    const double speedup = Field(obj, "efficiency.speedup_estimate");
    const double energy = Field(obj, "efficiency.energy_ratio");
    std::printf("efficiency: speedup estimate %.4g, energy ratio "
                "%.4g (window %.0f of %.0f invocations)\n",
                speedup, energy, Field(obj, "efficiency.window"),
                Field(obj, "efficiency.invocations"));
    if (baseline_path.empty())
        return 0;

    JsonObject base;
    if (!LoadProfilez(baseline_path, &base))
        return 2;
    if (Field(base, "schema_version") != Field(obj, "schema_version")) {
        std::fprintf(stderr,
                     "rumba-stat: profilez schema mismatch (%ld vs "
                     "%ld) — refusing to gate\n",
                     static_cast<long>(Field(base, "schema_version")),
                     static_cast<long>(Field(obj, "schema_version")));
        return 2;
    }
    std::printf("\nefficiency gate vs %s (tol %.3g relative):\n",
                baseline_path.c_str(), tol);
    size_t regressions = 0;
    CheckEfficiency("speedup estimate",
                    Field(base, "efficiency.speedup_estimate"),
                    speedup, /*higher_is_worse=*/false, tol,
                    &regressions);
    CheckEfficiency("energy ratio",
                    Field(base, "efficiency.energy_ratio"), energy,
                    /*higher_is_worse=*/true, tol, &regressions);
    std::printf("%s: 2 efficiency figures gated, %zu regressions\n",
                regressions == 0 ? "PASS" : "FAIL", regressions);
    return regressions == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// audit: summarize / regression-gate RUMBA_AUDIT_OUT labeled dumps.
// ---------------------------------------------------------------------------

/** One "audit" line from a RUMBA_AUDIT_OUT dump. */
struct AuditRecord {
    double trace_id = 0;
    long shard = 0;
    bool forced = false;
    std::string forced_reason;
    double elements = 0;  ///< audited elements (strided subset size).
    double estimated_error_pct = 0;
    double reported_error_pct = 0;
    double true_error_pct = 0;
    bool toq_violation = false;
    double toq_bound_pct = 0;
    double tp = 0, fp = 0, fn = 0, tn = 0;
};

/** Everything loaded from one audit dump. */
struct AuditDump {
    std::string path;
    bool has_meta = false;
    long schema_version = -1;
    std::vector<AuditRecord> records;
    size_t element_lines = 0;
    size_t needs_fix_elements = 0;  ///< from audit_element labels.
};

/** Derived calibration summary of one audit dump. */
struct AuditStats {
    size_t audits = 0, forced = 0, violations = 0;
    double elements = 0;
    double tp = 0, fp = 0, fn = 0, tn = 0;
    double mean_true_error = 0, mean_abs_gap = 0;
    double violation_rate = 0, precision = 1.0, recall = 1.0;
    std::map<long, std::array<double, 4>> per_shard;  ///< tp,fp,fn,tn.
};

bool
LoadAuditDump(const std::string& path, AuditDump* dump)
{
    dump->path = path;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rumba-stat: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonObject obj;
        if (!ParseJsonLine(line, &obj)) {
            std::fprintf(stderr, "rumba-stat: %s:%zu: bad JSON line\n",
                         path.c_str(), lineno);
            return false;
        }
        const std::string type = TextField(obj, "type");
        if (type == "meta") {
            dump->has_meta = true;
            dump->schema_version =
                static_cast<long>(Field(obj, "schema_version", -1));
        } else if (type == "audit") {
            AuditRecord r;
            r.trace_id = Field(obj, "trace_id");
            r.shard = static_cast<long>(Field(obj, "shard"));
            r.forced = Field(obj, "forced") != 0;
            r.forced_reason = TextField(obj, "forced_reason");
            // Older dumps predate element-budget striding and carry
            // only "elements" (then every element was audited).
            r.elements =
                Field(obj, "audited_elements",
                      Field(obj, "elements"));
            r.estimated_error_pct = Field(obj, "estimated_error_pct");
            r.reported_error_pct = Field(obj, "reported_error_pct");
            r.true_error_pct = Field(obj, "true_error_pct");
            r.toq_violation = Field(obj, "toq_violation") != 0;
            r.toq_bound_pct = Field(obj, "toq_bound_pct");
            r.tp = Field(obj, "tp");
            r.fp = Field(obj, "fp");
            r.fn = Field(obj, "fn");
            r.tn = Field(obj, "tn");
            dump->records.push_back(std::move(r));
        } else if (type == "audit_element") {
            ++dump->element_lines;
            if (Field(obj, "needs_fix") != 0)
                ++dump->needs_fix_elements;
        }
        // Other line types (metrics mixed in, future kinds): ignored.
    }
    if (dump->records.empty()) {
        std::fprintf(stderr,
                     "rumba-stat: %s has no \"audit\" lines — not a "
                     "RUMBA_AUDIT_OUT dump?\n",
                     path.c_str());
        return false;
    }
    return true;
}

AuditStats
SummarizeAudits(const AuditDump& dump)
{
    AuditStats s;
    double gap_sum = 0, err_sum = 0;
    for (const AuditRecord& r : dump.records) {
        ++s.audits;
        s.forced += r.forced ? 1 : 0;
        s.violations += r.toq_violation ? 1 : 0;
        s.elements += r.elements;
        s.tp += r.tp;
        s.fp += r.fp;
        s.fn += r.fn;
        s.tn += r.tn;
        err_sum += r.true_error_pct;
        gap_sum += std::fabs(r.true_error_pct - r.estimated_error_pct);
        auto& shard = s.per_shard[r.shard];
        shard[0] += r.tp;
        shard[1] += r.fp;
        shard[2] += r.fn;
        shard[3] += r.tn;
    }
    if (s.audits > 0) {
        s.mean_true_error = err_sum / static_cast<double>(s.audits);
        s.mean_abs_gap = gap_sum / static_cast<double>(s.audits);
        s.violation_rate = static_cast<double>(s.violations) /
                           static_cast<double>(s.audits);
    }
    const double fires = s.tp + s.fp;
    const double needed = s.tp + s.fn;
    s.precision = fires == 0 ? 1.0 : s.tp / fires;
    s.recall = needed == 0 ? 1.0 : s.tp / needed;
    return s;
}

void
PrintAuditSummary(const AuditDump& dump, const AuditStats& s,
                  size_t worst_k)
{
    std::printf("== %s ==\n", dump.path.c_str());
    if (dump.has_meta)
        std::printf("meta: schema v%ld\n", dump.schema_version);
    std::printf(
        "%zu audits (%zu forced), %.0f elements audited (%zu element "
        "lines, %zu needing a fix)\n",
        s.audits, s.forced, s.elements, dump.element_lines,
        dump.needs_fix_elements);
    std::printf(
        "true TOQ violations: %zu / %zu (rate %.4f, bound %.4g%%)\n",
        s.violations, s.audits, s.violation_rate,
        dump.records.front().toq_bound_pct);
    std::printf(
        "mean true error %.4g%%   mean |true - estimated| gap %.4g%%\n"
        "\n",
        s.mean_true_error, s.mean_abs_gap);

    std::printf("checker calibration (accelerator-served elements):\n");
    std::printf("  %-8s %10s %10s %10s %10s %10s %8s\n", "shard",
                "tp", "fp(rec)", "fn(acc)", "tn", "precision",
                "recall");
    for (const auto& [shard, counts] : s.per_shard) {
        const double fires = counts[0] + counts[1];
        const double needed = counts[0] + counts[2];
        std::printf("  %-8ld %10.0f %10.0f %10.0f %10.0f %10.4f "
                    "%8.4f\n",
                    shard, counts[0], counts[1], counts[2], counts[3],
                    fires == 0 ? 1.0 : counts[0] / fires,
                    needed == 0 ? 1.0 : counts[0] / needed);
    }
    std::printf("  %-8s %10.0f %10.0f %10.0f %10.0f %10.4f %8.4f\n",
                "total", s.tp, s.fp, s.fn, s.tn, s.precision,
                s.recall);

    if (worst_k > 0) {
        std::vector<const AuditRecord*> ranked;
        ranked.reserve(dump.records.size());
        for (const AuditRecord& r : dump.records)
            ranked.push_back(&r);
        std::sort(ranked.begin(), ranked.end(),
                  [](const AuditRecord* a, const AuditRecord* b) {
                      return a->true_error_pct > b->true_error_pct;
                  });
        std::printf("\nworst %zu audited invocations by true error:\n",
                    std::min(worst_k, ranked.size()));
        std::printf("  %-12s %-6s %12s %12s %5s %s\n", "trace_id",
                    "shard", "true_err%", "est_err%", "viol",
                    "forced");
        for (size_t i = 0; i < ranked.size() && i < worst_k; ++i) {
            const AuditRecord& r = *ranked[i];
            std::printf("  %-12.0f %-6ld %12.4g %12.4g %5s %s\n",
                        r.trace_id, r.shard, r.true_error_pct,
                        r.estimated_error_pct,
                        r.toq_violation ? "YES" : "no",
                        r.forced ? r.forced_reason.c_str() : "-");
        }
    }
}

/** One audited calibration figure gate: candidate may not be worse
 *  than baseline by more than @p tol (absolute). */
void
CheckCalibration(const char* what, double base, double cand,
                 bool higher_is_worse, double tol, size_t* regressions)
{
    const double delta = higher_is_worse ? cand - base : base - cand;
    if (delta <= tol)
        return;
    ++*regressions;
    std::printf("REGRESSION  %-24s %.4f -> %.4f  (moved %.4f > tol "
                "%.4f)\n",
                what, base, cand, delta, tol);
}

int
CmdAudit(const std::string& path, const std::string& baseline_path,
         double tol, size_t worst_k)
{
    AuditDump dump;
    if (!LoadAuditDump(path, &dump))
        return 2;
    const AuditStats stats = SummarizeAudits(dump);
    PrintAuditSummary(dump, stats, worst_k);
    if (baseline_path.empty())
        return 0;

    AuditDump base;
    if (!LoadAuditDump(baseline_path, &base))
        return 2;
    if (base.has_meta && dump.has_meta &&
        base.schema_version != dump.schema_version) {
        std::fprintf(stderr,
                     "rumba-stat: schema mismatch: %s is v%ld, %s is "
                     "v%ld — refusing to diff\n",
                     base.path.c_str(), base.schema_version,
                     dump.path.c_str(), dump.schema_version);
        return 2;
    }
    const AuditStats bs = SummarizeAudits(base);
    std::printf("\ncalibration gate vs %s (tol %.4f absolute):\n",
                baseline_path.c_str(), tol);
    size_t regressions = 0;
    CheckCalibration("checker precision", bs.precision,
                     stats.precision, /*higher_is_worse=*/false, tol,
                     &regressions);
    CheckCalibration("checker recall", bs.recall, stats.recall,
                     /*higher_is_worse=*/false, tol, &regressions);
    CheckCalibration("true TOQ violation rate", bs.violation_rate,
                     stats.violation_rate, /*higher_is_worse=*/true,
                     tol, &regressions);
    std::printf("%s: 3 calibration figures gated, %zu regressions\n",
                regressions == 0 ? "PASS" : "FAIL", regressions);
    return regressions == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// scenarios: summarize / gate a scenario-matrix dump
// (tools/rumba_scenarios --out, RUMBA_SCENARIO_OUT).
// ---------------------------------------------------------------------------

/** One "type":"scenario" line from the matrix runner. */
struct ScenarioRow {
    std::string name, status, workload, arrival, fault, violations;
    bool admission = false;
    double offered = 0, served = 0, shed = 0, expired = 0,
           rejected = 0, gold_p99_ms = 0, loss_fraction = 0;
};

/** A loaded scenario dump: meta header plus rows in file order. */
struct ScenarioDump {
    std::string path;
    bool has_meta = false;
    long schema_version = -1;
    std::vector<ScenarioRow> rows;
};

bool
LoadScenarioDump(const std::string& path, ScenarioDump* dump)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rumba-stat: cannot open %s\n",
                     path.c_str());
        return false;
    }
    dump->path = path;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonObject obj;
        if (!ParseJsonLine(line, &obj)) {
            std::fprintf(stderr,
                         "rumba-stat: %s:%zu: malformed JSON line\n",
                         path.c_str(), lineno);
            return false;
        }
        const std::string type = TextField(obj, "type");
        if (type == "meta") {
            dump->has_meta = true;
            dump->schema_version =
                static_cast<long>(Field(obj, "schema_version", -1));
            continue;
        }
        if (type != "scenario")
            continue;
        ScenarioRow row;
        row.name = TextField(obj, "name");
        row.status = TextField(obj, "status");
        row.workload = TextField(obj, "workload");
        row.arrival = TextField(obj, "arrival");
        row.fault = TextField(obj, "fault");
        row.violations = TextField(obj, "violations");
        row.admission = Field(obj, "admission") != 0;
        row.offered = Field(obj, "offered");
        row.served = Field(obj, "served");
        row.shed = Field(obj, "shed");
        row.expired = Field(obj, "expired");
        row.rejected = Field(obj, "rejected");
        row.gold_p99_ms = Field(obj, "gold_p99_ms");
        row.loss_fraction = Field(obj, "loss_fraction");
        if (row.name.empty() || row.status.empty()) {
            std::fprintf(stderr,
                         "rumba-stat: %s:%zu: scenario line missing "
                         "name/status\n",
                         path.c_str(), lineno);
            return false;
        }
        dump->rows.push_back(std::move(row));
    }
    if (dump->rows.empty()) {
        std::fprintf(stderr,
                     "rumba-stat: %s: no scenario lines found\n",
                     path.c_str());
        return false;
    }
    return true;
}

const ScenarioRow*
FindScenario(const ScenarioDump& dump, const std::string& name)
{
    for (const ScenarioRow& row : dump.rows)
        if (row.name == name)
            return &row;
    return nullptr;
}

int
CmdScenarios(const std::string& path, const std::string& baseline_path)
{
    ScenarioDump dump;
    if (!LoadScenarioDump(path, &dump))
        return 2;

    std::printf("== %s ==\n", dump.path.c_str());
    size_t pass = 0, fail = 0, skip = 0;
    for (const ScenarioRow& row : dump.rows) {
        if (row.status == "pass")
            ++pass;
        else if (row.status == "skip")
            ++skip;
        else
            ++fail;
        std::printf("  %-5s %-24s %-10s %-8s adm=%-3s offered=%-6.0f "
                    "served=%-6.0f shed=%-5.0f rejected=%-5.0f "
                    "gold_p99=%.1fms loss=%.3f\n",
                    row.status.c_str(), row.name.c_str(),
                    row.workload.c_str(), row.arrival.c_str(),
                    row.admission ? "on" : "off", row.offered,
                    row.served, row.shed, row.rejected,
                    row.gold_p99_ms, row.loss_fraction);
        if (!row.violations.empty())
            std::printf("        violations: %s\n",
                        row.violations.c_str());
    }
    std::printf("%zu scenarios: %zu pass, %zu fail/error, %zu skip\n",
                dump.rows.size(), pass, fail, skip);

    if (baseline_path.empty())
        return fail == 0 ? 0 : 1;

    ScenarioDump base;
    if (!LoadScenarioDump(baseline_path, &base))
        return 2;
    if (base.has_meta && dump.has_meta &&
        base.schema_version != dump.schema_version) {
        std::fprintf(stderr,
                     "rumba-stat: schema mismatch: %s is v%ld, %s is "
                     "v%ld — refusing to diff\n",
                     base.path.c_str(), base.schema_version,
                     dump.path.c_str(), dump.schema_version);
        return 2;
    }

    // Gate: any scenario the baseline passed must still pass (a skip
    // is neutral — the environment forced it off, e.g. an external
    // RUMBA_FAULT_PLAN). New scenarios and fixed failures are notes.
    std::printf("\nscenario gate vs %s:\n", baseline_path.c_str());
    size_t regressions = 0, compared = 0;
    for (const ScenarioRow& brow : base.rows) {
        if (brow.status != "pass")
            continue;
        ++compared;
        const ScenarioRow* crow = FindScenario(dump, brow.name);
        if (crow == nullptr) {
            ++regressions;
            std::printf("REGRESSION  %-24s pass -> (missing)\n",
                        brow.name.c_str());
            continue;
        }
        if (crow->status == "pass" || crow->status == "skip")
            continue;
        ++regressions;
        std::printf("REGRESSION  %-24s pass -> %s%s%s\n",
                    brow.name.c_str(), crow->status.c_str(),
                    crow->violations.empty() ? "" : ": ",
                    crow->violations.c_str());
    }
    for (const ScenarioRow& brow : base.rows) {
        if (brow.status == "pass")
            continue;
        const ScenarioRow* crow = FindScenario(dump, brow.name);
        if (crow != nullptr && crow->status == "pass")
            std::printf("note: %s now passes (was %s)\n",
                        brow.name.c_str(), brow.status.c_str());
    }
    for (const ScenarioRow& crow : dump.rows) {
        if (FindScenario(base, crow.name) == nullptr)
            std::printf("note: new scenario %s (%s) — not in "
                        "baseline\n",
                        crow.name.c_str(), crow.status.c_str());
    }
    std::printf("%s: %zu baseline scenarios gated, %zu regressions\n",
                regressions == 0 ? "PASS" : "FAIL", compared,
                regressions);
    return regressions == 0 ? 0 : 1;
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  rumba-stat summary <dump.jsonl>...\n"
        "  rumba-stat diff <baseline.jsonl> <candidate.jsonl>\n"
        "      [--tol <rel>] [--tol-metric <name>=<rel>]\n"
        "      [--include-latency]\n"
        "  rumba-stat scrape <target> [--check] [--baseline <dump>]\n"
        "      [--tol <rel>] [--tol-metric <name>=<rel>]\n"
        "      [--include-latency]\n"
        "  rumba-stat audit <audit.jsonl> [--baseline <audit.jsonl>]\n"
        "      [--tol <abs>] [--worst <K>]\n"
        "  rumba-stat profile <target> [--baseline <profilez.json>]\n"
        "      [--tol <rel>]\n"
        "  rumba-stat scenarios <scenarios.jsonl>\n"
        "      [--baseline <scenarios.jsonl>]\n"
        "\n"
        "Dumps are RUMBA_METRICS_OUT metric files or RUMBA_STREAM_OUT\n"
        "sample streams (JSONL; '.csv' metric dumps load too).\n"
        "diff exits 1 when any metric moves outside its relative\n"
        "tolerance (default: exact), 2 on load/schema errors.\n"
        "scrape reads Prometheus text from http://host:port[/path],\n"
        "host:port, or a saved exposition file; --check validates the\n"
        "format, --baseline diffs against a metrics dump (histogram\n"
        "counts only), default prints a summary.\n"
        "audit reads a RUMBA_AUDIT_OUT labeled dump: ground-truth TOQ\n"
        "violation rate, checker-calibration table (per shard), and\n"
        "the worst-K invocations by true error; --baseline gates\n"
        "precision / recall / violation rate against another audit\n"
        "dump (exit 1 when any worsens by more than --tol, default\n"
        "0.05 absolute).\n"
        "profile reads the live cost profiler from http://host:port\n"
        "(/profilez by default), host:port, or a saved JSON body:\n"
        "per-stage CPU seconds and shares, sampler state, and the\n"
        "rolling speedup/energy estimate; --baseline gates the two\n"
        "efficiency figures against a saved /profilez body (exit 1\n"
        "when either worsens by more than --tol, default 0.15\n"
        "relative; 2 on schema mismatch).\n"
        "scenarios reads a RUMBA_SCENARIO_OUT matrix dump (tools/\n"
        "rumba_scenarios --out): per-scenario status table plus\n"
        "violations; without --baseline, exit 1 when any scenario is\n"
        "fail/error; with --baseline, exit 1 when any scenario the\n"
        "baseline passed now fails or is missing (skips are neutral;\n"
        "new scenarios and fixed failures are notes).\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return Usage();
    const std::string cmd = argv[1];

    if (cmd == "summary") {
        if (argc < 3)
            return Usage();
        for (int i = 2; i < argc; ++i) {
            Dump dump;
            if (!LoadDump(argv[i], &dump))
                return 2;
            if (i > 2)
                std::printf("\n");
            CmdSummary(dump);
        }
        return 0;
    }

    if (cmd == "diff") {
        DiffOptions opts;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--tol" && i + 1 < argc) {
                opts.default_tol = std::strtod(argv[++i], nullptr);
            } else if (arg == "--tol-metric" && i + 1 < argc) {
                const std::string spec = argv[++i];
                const size_t eq = spec.find('=');
                if (eq == std::string::npos)
                    return Usage();
                opts.per_metric[spec.substr(0, eq)] =
                    std::strtod(spec.c_str() + eq + 1, nullptr);
            } else if (arg == "--include-latency") {
                opts.include_latency = true;
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 2)
            return Usage();
        Dump base, cand;
        if (!LoadDump(files[0], &base) || !LoadDump(files[1], &cand))
            return 2;
        return CmdDiff(base, cand, opts);
    }

    if (cmd == "scrape") {
        DiffOptions opts;
        bool check = false;
        std::string baseline;
        std::vector<std::string> targets;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--check") {
                check = true;
            } else if (arg == "--baseline" && i + 1 < argc) {
                baseline = argv[++i];
            } else if (arg == "--tol" && i + 1 < argc) {
                opts.default_tol = std::strtod(argv[++i], nullptr);
            } else if (arg == "--tol-metric" && i + 1 < argc) {
                const std::string spec = argv[++i];
                const size_t eq = spec.find('=');
                if (eq == std::string::npos)
                    return Usage();
                opts.per_metric[spec.substr(0, eq)] =
                    std::strtod(spec.c_str() + eq + 1, nullptr);
            } else if (arg == "--include-latency") {
                opts.include_latency = true;
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                targets.push_back(arg);
            }
        }
        if (targets.size() != 1)
            return Usage();
        return CmdScrape(targets[0], check, baseline, opts);
    }

    if (cmd == "profile") {
        double tol = 0.15;
        std::string baseline;
        std::vector<std::string> targets;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--baseline" && i + 1 < argc) {
                baseline = argv[++i];
            } else if (arg == "--tol" && i + 1 < argc) {
                tol = std::strtod(argv[++i], nullptr);
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                targets.push_back(arg);
            }
        }
        if (targets.size() != 1)
            return Usage();
        return CmdProfile(targets[0], baseline, tol);
    }

    if (cmd == "scenarios") {
        std::string baseline;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--baseline" && i + 1 < argc) {
                baseline = argv[++i];
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 1)
            return Usage();
        return CmdScenarios(files[0], baseline);
    }

    if (cmd == "audit") {
        double tol = 0.05;
        size_t worst_k = 5;
        std::string baseline;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--baseline" && i + 1 < argc) {
                baseline = argv[++i];
            } else if (arg == "--tol" && i + 1 < argc) {
                tol = std::strtod(argv[++i], nullptr);
            } else if (arg == "--worst" && i + 1 < argc) {
                worst_k = static_cast<size_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 1)
            return Usage();
        return CmdAudit(files[0], baseline, tol, worst_k);
    }

    return Usage();
}
