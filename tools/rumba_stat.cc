/**
 * @file
 * rumba-stat: offline companion to the obs/ subsystem. Reads the
 * JSONL dumps the runtime emits (RUMBA_METRICS_OUT metric dumps and
 * RUMBA_STREAM_OUT sample streams), summarizes one run, and diffs two
 * runs against per-metric relative tolerances so CI can gate merges
 * on telemetry regressions.
 *
 *   rumba-stat summary <dump.jsonl>
 *   rumba-stat diff <baseline.jsonl> <candidate.jsonl>
 *       [--tol <rel>] [--tol-metric name=<rel>] [--include-latency]
 *
 * Exit codes: 0 = ok / no regression, 1 = regression detected,
 * 2 = usage or load error (including schema-version mismatch).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON-line parser: handles exactly the flat (one level of
// nesting for stream samples) objects our own exporters emit. Not a
// general JSON parser; unknown constructs fail the line loudly.
// ---------------------------------------------------------------------------

/** One parsed JSON scalar. */
struct JsonValue {
    enum class Kind { kNumber, kString, kBool } kind = Kind::kNumber;
    double number = 0.0;
    std::string text;
};

/** A parsed line: scalars at the top level plus "prefix.key" for the
 *  one nested level stream samples use ("counters", "gauges",
 *  "trace"). */
using JsonObject = std::map<std::string, JsonValue>;

void
SkipSpace(const std::string& s, size_t* i)
{
    while (*i < s.size() &&
           (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\r'))
        ++*i;
}

bool
ParseString(const std::string& s, size_t* i, std::string* out)
{
    if (*i >= s.size() || s[*i] != '"')
        return false;
    ++*i;
    out->clear();
    while (*i < s.size() && s[*i] != '"') {
        char c = s[*i];
        if (c == '\\' && *i + 1 < s.size()) {
            ++*i;
            switch (s[*i]) {
              case '"': c = '"'; break;
              case '\\': c = '\\'; break;
              case '/': c = '/'; break;
              case 'b': c = '\b'; break;
              case 'f': c = '\f'; break;
              case 'n': c = '\n'; break;
              case 'r': c = '\r'; break;
              case 't': c = '\t'; break;
              case 'u': {
                // Only \u00XX is ever emitted; decode the low byte.
                if (*i + 4 >= s.size())
                    return false;
                c = static_cast<char>(
                    std::strtol(s.substr(*i + 1, 4).c_str(), nullptr,
                                16));
                *i += 4;
                break;
              }
              default: return false;
            }
        }
        out->push_back(c);
        ++*i;
    }
    if (*i >= s.size())
        return false;
    ++*i;  // closing quote.
    return true;
}

bool
ParseValue(const std::string& s, size_t* i, const std::string& prefix,
           const std::string& key, JsonObject* out);

bool
ParseObject(const std::string& s, size_t* i, const std::string& prefix,
            JsonObject* out)
{
    if (*i >= s.size() || s[*i] != '{')
        return false;
    ++*i;
    SkipSpace(s, i);
    if (*i < s.size() && s[*i] == '}') {
        ++*i;
        return true;
    }
    for (;;) {
        SkipSpace(s, i);
        std::string key;
        if (!ParseString(s, i, &key))
            return false;
        SkipSpace(s, i);
        if (*i >= s.size() || s[*i] != ':')
            return false;
        ++*i;
        SkipSpace(s, i);
        if (!ParseValue(s, i, prefix, key, out))
            return false;
        SkipSpace(s, i);
        if (*i >= s.size())
            return false;
        if (s[*i] == ',') {
            ++*i;
            continue;
        }
        if (s[*i] == '}') {
            ++*i;
            return true;
        }
        return false;
    }
}

bool
ParseValue(const std::string& s, size_t* i, const std::string& prefix,
           const std::string& key, JsonObject* out)
{
    const std::string full = prefix.empty() ? key : prefix + "." + key;
    JsonValue v;
    if (*i >= s.size())
        return false;
    const char c = s[*i];
    if (c == '"') {
        v.kind = JsonValue::Kind::kString;
        if (!ParseString(s, i, &v.text))
            return false;
    } else if (c == '{') {
        // One nested level: flatten as "key.subkey".
        return ParseObject(s, i, full, out);
    } else if (s.compare(*i, 4, "true") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.number = 1.0;
        *i += 4;
    } else if (s.compare(*i, 5, "false") == 0) {
        v.kind = JsonValue::Kind::kBool;
        v.number = 0.0;
        *i += 5;
    } else {
        char* end = nullptr;
        v.number = std::strtod(s.c_str() + *i, &end);
        if (end == s.c_str() + *i)
            return false;
        *i = static_cast<size_t>(end - s.c_str());
    }
    (*out)[full] = v;
    return true;
}

bool
ParseJsonLine(const std::string& line, JsonObject* out)
{
    size_t i = 0;
    SkipSpace(line, &i);
    if (!ParseObject(line, &i, "", out))
        return false;
    SkipSpace(line, &i);
    return i == line.size() || line[i] == '\n';
}

// ---------------------------------------------------------------------------
// Dump model: one loaded metrics or stream file.
// ---------------------------------------------------------------------------

/** Histogram summary row from a metrics dump. */
struct HistogramStats {
    double count = 0, sum = 0, min = 0, max = 0, p50 = 0, p90 = 0,
           p99 = 0;
};

/** Everything rumba-stat extracts from one dump file. */
struct Dump {
    std::string path;
    bool has_meta = false;
    long schema_version = -1;
    std::string wall_time, hostname, build_type, sanitizers;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramStats> histograms;
    /** Threshold trajectory: per-invocation from trace lines, or
     *  per-sample from stream lines — whichever the file carries. */
    std::vector<double> thresholds;
    size_t samples = 0;      ///< stream "sample" lines seen.
    size_t trace_lines = 0;  ///< metrics "trace" lines seen.
};

double
Field(const JsonObject& obj, const std::string& key, double fallback = 0)
{
    const auto it = obj.find(key);
    return it == obj.end() ? fallback : it->second.number;
}

std::string
TextField(const JsonObject& obj, const std::string& key)
{
    const auto it = obj.find(key);
    return it == obj.end() ? "" : it->second.text;
}

/** One "type,name,value,sum,min,max,p50,p90,p99,notes" CSV row. */
bool
LoadCsvRow(const std::string& line, Dump* dump)
{
    std::vector<std::string> cells;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell.push_back(c);
        }
    }
    cells.push_back(cell);
    if (cells.size() < 3)
        return false;
    const std::string& type = cells[0];
    if (type == "type")
        return true;  // header row.
    const std::string& name = cells[1];
    if (type == "counter") {
        dump->counters[name] = std::strtod(cells[2].c_str(), nullptr);
    } else if (type == "gauge") {
        dump->gauges[name] = std::strtod(cells[2].c_str(), nullptr);
    } else if (type == "histogram" && cells.size() >= 9) {
        HistogramStats h;
        h.count = std::strtod(cells[2].c_str(), nullptr);
        h.sum = std::strtod(cells[3].c_str(), nullptr);
        h.min = std::strtod(cells[4].c_str(), nullptr);
        h.max = std::strtod(cells[5].c_str(), nullptr);
        h.p50 = std::strtod(cells[6].c_str(), nullptr);
        h.p90 = std::strtod(cells[7].c_str(), nullptr);
        h.p99 = std::strtod(cells[8].c_str(), nullptr);
        dump->histograms[name] = h;
    }
    return true;  // unknown row types are forward-compatible.
}

/** Load a metrics/stream JSONL dump or a ".csv" metrics dump.
 *  Returns false on I/O or parse failure (diagnostic on stderr). */
bool
LoadDump(const std::string& path, Dump* dump)
{
    dump->path = path;
    const bool csv =
        path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "rumba-stat: cannot open %s\n",
                     path.c_str());
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        // CSV dumps carry the meta header as a "# " comment.
        if (line[0] == '#') {
            const size_t brace = line.find('{');
            if (brace == std::string::npos)
                continue;
            line = line.substr(brace);
        } else if (csv) {
            if (!LoadCsvRow(line, dump)) {
                std::fprintf(stderr,
                             "rumba-stat: %s:%zu: bad CSV row\n",
                             path.c_str(), lineno);
                return false;
            }
            continue;
        }
        JsonObject obj;
        if (!ParseJsonLine(line, &obj)) {
            std::fprintf(stderr, "rumba-stat: %s:%zu: bad JSON line\n",
                         path.c_str(), lineno);
            return false;
        }
        const std::string type = TextField(obj, "type");
        if (type == "meta") {
            dump->has_meta = true;
            dump->schema_version =
                static_cast<long>(Field(obj, "schema_version", -1));
            dump->wall_time = TextField(obj, "wall_time");
            dump->hostname = TextField(obj, "hostname");
            dump->build_type = TextField(obj, "build_type");
            dump->sanitizers = TextField(obj, "sanitizers");
        } else if (type == "counter") {
            dump->counters[TextField(obj, "name")] =
                Field(obj, "value");
        } else if (type == "gauge") {
            dump->gauges[TextField(obj, "name")] = Field(obj, "value");
        } else if (type == "histogram") {
            HistogramStats h;
            h.count = Field(obj, "count");
            h.sum = Field(obj, "sum");
            h.min = Field(obj, "min");
            h.max = Field(obj, "max");
            h.p50 = Field(obj, "p50");
            h.p90 = Field(obj, "p90");
            h.p99 = Field(obj, "p99");
            dump->histograms[TextField(obj, "name")] = h;
        } else if (type == "trace") {
            ++dump->trace_lines;
            dump->thresholds.push_back(Field(obj, "threshold"));
        } else if (type == "sample") {
            ++dump->samples;
            // Stream samples carry counter *deltas*; accumulate them
            // into run totals. Gauges are instantaneous; keep latest.
            for (const auto& [key, value] : obj) {
                if (key.rfind("counters.", 0) == 0)
                    dump->counters[key.substr(9)] += value.number;
                else if (key.rfind("gauges.", 0) == 0)
                    dump->gauges[key.substr(7)] = value.number;
            }
            const auto t = obj.find("gauges.tuner.threshold");
            if (t != obj.end())
                dump->thresholds.push_back(t->second.number);
            else if (obj.count("trace.threshold"))
                dump->thresholds.push_back(
                    Field(obj, "trace.threshold"));
        }
        // Unknown types are forward-compatible: ignored.
    }
    return true;
}

// ---------------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------------

void
PrintThresholdTrajectory(const Dump& dump)
{
    if (dump.thresholds.empty()) {
        std::printf("threshold trajectory: (none recorded)\n");
        return;
    }
    double lo = dump.thresholds.front(), hi = lo;
    std::set<double> distinct;
    size_t moves = 0;
    for (size_t i = 0; i < dump.thresholds.size(); ++i) {
        const double t = dump.thresholds[i];
        lo = std::min(lo, t);
        hi = std::max(hi, t);
        distinct.insert(t);
        if (i > 0 && t != dump.thresholds[i - 1])
            ++moves;
    }
    std::printf("threshold trajectory: %zu points, %zu distinct, %zu "
                "moves\n  first %.6g -> last %.6g   (range [%.6g, "
                "%.6g])\n",
                dump.thresholds.size(), distinct.size(), moves,
                dump.thresholds.front(), dump.thresholds.back(), lo,
                hi);
}

int
CmdSummary(const Dump& dump)
{
    std::printf("== %s ==\n", dump.path.c_str());
    if (dump.has_meta) {
        std::printf("meta: schema v%ld, %s on %s, build %s%s%s\n",
                    dump.schema_version, dump.wall_time.c_str(),
                    dump.hostname.c_str(), dump.build_type.c_str(),
                    dump.sanitizers.empty() ? "" : ", sanitizers ",
                    dump.sanitizers.c_str());
    } else {
        std::printf("meta: (no header — pre-v2 dump)\n");
    }
    std::printf("%zu counters, %zu gauges, %zu histograms, %zu trace "
                "lines, %zu stream samples\n\n",
                dump.counters.size(), dump.gauges.size(),
                dump.histograms.size(), dump.trace_lines,
                dump.samples);
    for (const auto& [name, value] : dump.counters)
        std::printf("  counter    %-32s %.0f\n", name.c_str(), value);
    for (const auto& [name, value] : dump.gauges)
        std::printf("  gauge      %-32s %.6g\n", name.c_str(), value);
    for (const auto& [name, h] : dump.histograms) {
        std::printf("  histogram  %-32s n=%-8.0f p50=%-12.6g "
                    "p99=%.6g\n",
                    name.c_str(), h.count, h.p50, h.p99);
    }
    std::printf("\n");
    PrintThresholdTrajectory(dump);
    return 0;
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/** Tolerances: a default plus per-metric overrides. */
struct DiffOptions {
    double default_tol = 0.0;  ///< relative; 0 = exact.
    std::map<std::string, double> per_metric;
    bool include_latency = false;
};

double
TolFor(const DiffOptions& opts, const std::string& name)
{
    const auto it = opts.per_metric.find(name);
    return it == opts.per_metric.end() ? opts.default_tol : it->second;
}

/** True when the metric measures wall time (machine-dependent). */
bool
IsLatencyMetric(const std::string& name)
{
    return name.size() > 3 &&
           name.compare(name.size() - 3, 3, "_ns") == 0;
}

bool
WithinTolerance(double base, double cand, double tol)
{
    if (base == cand)
        return true;
    const double mag = std::max(std::fabs(base), std::fabs(cand));
    return std::fabs(cand - base) <= tol * mag;
}

/** Compare one metric; prints and counts a regression when outside
 *  tolerance. */
void
CheckValue(const std::string& kind, const std::string& name,
           double base, double cand, const DiffOptions& opts,
           size_t* compared, size_t* regressions)
{
    ++*compared;
    const double tol = TolFor(opts, name);
    if (WithinTolerance(base, cand, tol))
        return;
    ++*regressions;
    const double mag = std::max(std::fabs(base), std::fabs(cand));
    std::printf("REGRESSION  %-9s %-32s %.6g -> %.6g  (rel %.3g > tol "
                "%.3g)\n",
                kind.c_str(), name.c_str(), base, cand,
                mag == 0 ? 0 : std::fabs(cand - base) / mag, tol);
}

int
CmdDiff(const Dump& base, const Dump& cand, const DiffOptions& opts)
{
    // Refuse to compare dumps written by incompatible exporters.
    if (base.has_meta && cand.has_meta &&
        base.schema_version != cand.schema_version) {
        std::fprintf(stderr,
                     "rumba-stat: schema mismatch: %s is v%ld, %s is "
                     "v%ld — refusing to diff\n",
                     base.path.c_str(), base.schema_version,
                     cand.path.c_str(), cand.schema_version);
        return 2;
    }
    if (base.has_meta && cand.has_meta &&
        base.sanitizers != cand.sanitizers) {
        std::printf("note: sanitizer configs differ (\"%s\" vs "
                    "\"%s\") — latency metrics are not comparable\n",
                    base.sanitizers.c_str(), cand.sanitizers.c_str());
    }

    size_t compared = 0, regressions = 0, skipped_latency = 0;
    std::vector<std::string> missing;

    for (const auto& [name, value] : base.counters) {
        const auto it = cand.counters.find(name);
        if (it == cand.counters.end()) {
            missing.push_back("counter " + name);
            continue;
        }
        CheckValue("counter", name, value, it->second, opts, &compared,
                   &regressions);
    }
    for (const auto& [name, value] : base.gauges) {
        const auto it = cand.gauges.find(name);
        if (it == cand.gauges.end()) {
            missing.push_back("gauge " + name);
            continue;
        }
        CheckValue("gauge", name, value, it->second, opts, &compared,
                   &regressions);
    }
    for (const auto& [name, h] : base.histograms) {
        const auto it = cand.histograms.find(name);
        if (it == cand.histograms.end()) {
            missing.push_back("histogram " + name);
            continue;
        }
        // Event counts are deterministic; the value distribution of a
        // latency histogram is machine noise unless asked for.
        CheckValue("histogram", name + ".count", h.count,
                   it->second.count, opts, &compared, &regressions);
        if (IsLatencyMetric(name) && !opts.include_latency) {
            ++skipped_latency;
            continue;
        }
        if (!IsLatencyMetric(name) || opts.include_latency) {
            CheckValue("histogram", name + ".p50", h.p50,
                       it->second.p50, opts, &compared, &regressions);
        }
    }

    for (const auto& name : missing)
        std::printf("REGRESSION  missing in candidate: %s\n",
                    name.c_str());
    regressions += missing.size();

    std::printf("%s: %zu metrics compared, %zu regressions, %zu "
                "latency distributions skipped\n",
                regressions == 0 ? "PASS" : "FAIL", compared,
                regressions, skipped_latency);
    return regressions == 0 ? 0 : 1;
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  rumba-stat summary <dump.jsonl>...\n"
        "  rumba-stat diff <baseline.jsonl> <candidate.jsonl>\n"
        "      [--tol <rel>] [--tol-metric <name>=<rel>]\n"
        "      [--include-latency]\n"
        "\n"
        "Dumps are RUMBA_METRICS_OUT metric files or RUMBA_STREAM_OUT\n"
        "sample streams (JSONL; '.csv' metric dumps load too).\n"
        "diff exits 1 when any metric moves outside its relative\n"
        "tolerance (default: exact), 2 on load/schema errors.\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return Usage();
    const std::string cmd = argv[1];

    if (cmd == "summary") {
        if (argc < 3)
            return Usage();
        for (int i = 2; i < argc; ++i) {
            Dump dump;
            if (!LoadDump(argv[i], &dump))
                return 2;
            if (i > 2)
                std::printf("\n");
            CmdSummary(dump);
        }
        return 0;
    }

    if (cmd == "diff") {
        DiffOptions opts;
        std::vector<std::string> files;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--tol" && i + 1 < argc) {
                opts.default_tol = std::strtod(argv[++i], nullptr);
            } else if (arg == "--tol-metric" && i + 1 < argc) {
                const std::string spec = argv[++i];
                const size_t eq = spec.find('=');
                if (eq == std::string::npos)
                    return Usage();
                opts.per_metric[spec.substr(0, eq)] =
                    std::strtod(spec.c_str() + eq + 1, nullptr);
            } else if (arg == "--include-latency") {
                opts.include_latency = true;
            } else if (!arg.empty() && arg[0] == '-') {
                return Usage();
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 2)
            return Usage();
        Dump base, cand;
        if (!LoadDump(files[0], &base) || !LoadDump(files[1], &cand))
            return 2;
        return CmdDiff(base, cand, opts);
    }

    return Usage();
}
