/**
 * @file
 * Declarative overload/chaos scenario matrix for the serving engine.
 *
 * Each scenario crosses one workload with an arrival process
 * (serve/loadgen.h), a fault plan (fault/plan.h), and an admission
 * policy, runs the open-loop generator against a fresh ShardedEngine,
 * and then asserts the robustness invariants this repository promises
 * under overload:
 *
 *   - accounting: every offered request resolves to exactly one
 *     outcome — overload is never a silent drop;
 *   - expired work is never executed (kDeadlineExceeded results carry
 *     no outputs);
 *   - loss (shed + rejected + expired) stays inside the scenario's
 *     bound;
 *   - with admission on, gold traffic is never shed or check-bypassed,
 *     and in the protected scenarios survives a sustained 2x-capacity
 *     burst with its p99 inside the deadline;
 *   - with admission off, the same burst demonstrably fails gold (the
 *     scenario PASSES only when protection is lost — proving the
 *     ladder is what buys survival);
 *   - the audited-truth quality SLO stays quiet where required;
 *   - a breaker tripped by an armed fault plan walks back to closed
 *     once the faults stop.
 *
 * Offered rates are expressed as multiples of a measured per-workload
 * capacity (a closed-loop calibration run), so "2x capacity" means 2x
 * on whatever machine CI lands on. Results print as a PASS / FAIL /
 * ERROR / SKIP summary table and export as JSONL (--out or
 * RUMBA_SCENARIO_OUT) for `rumba-stat scenarios` to diff against the
 * checked-in baseline; a SIGINT/SIGTERM mid-matrix still flushes the
 * scenarios finished so far (obs::RegisterFlushHook).
 *
 * Environment interplay: an external RUMBA_FAULT_PLAN takes
 * precedence — scenarios that would arm their own plan SKIP rather
 * than fight over the process-wide injector. RUMBA_ADMISSION=off
 * force-disables admission in every engine, so admission-dependent
 * scenarios SKIP under it.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/benchmark.h"
#include "common/random.h"
#include "common/table.h"
#include "core/artifact.h"
#include "core/batch_view.h"
#include "core/runtime.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/slo.h"
#include "obs/timer.h"
#include "serve/engine.h"
#include "serve/loadgen.h"

namespace {

using rumba::Table;
using rumba::serve::ArrivalProcess;
using rumba::serve::QualityClass;

/** Modeled device occupancy per element — makes each workload's
 *  service time (and so "capacity") dominated by a deterministic
 *  virtual-device term instead of host CPU noise. */
constexpr uint64_t kDeviceNsPerElement = 50'000;
constexpr size_t kElementsPerRequest = 4;
constexpr size_t kShards = 2;
constexpr size_t kQueueCapacity = 32;

enum class ScenarioStatus { kPass, kFail, kError, kSkip };

const char*
StatusName(ScenarioStatus status)
{
    switch (status) {
      case ScenarioStatus::kPass: return "pass";
      case ScenarioStatus::kFail: return "fail";
      case ScenarioStatus::kError: return "error";
      case ScenarioStatus::kSkip: return "skip";
    }
    return "unknown";
}

/** One cell of the matrix: workload x arrival x faults x admission,
 *  plus which invariants apply and how much loss overload may cost. */
struct ScenarioSpec {
    std::string name;
    std::string workload = "inversek2j";
    ArrivalProcess arrival = ArrivalProcess::kPoisson;
    /** Mean offered rate as a multiple of measured capacity. */
    double load_factor = 0.4;
    /** Bursty shape (peak rate = load_factor x burst_factor). @{ */
    double burst_factor = 4.0;
    double idle_factor = 0.1;
    uint64_t burst_on_ms = 100;
    uint64_t burst_off_ms = 100;
    /** @} */
    double diurnal_peak_factor = 3.0;
    std::string fault_spec;  ///< "" = no faults.
    bool admission = true;
    uint64_t duration_ms = 400;
    /** Per-class relative deadlines (0 = none). @{ */
    uint64_t gold_deadline_ms = 50;
    uint64_t silver_deadline_ms = 100;
    uint64_t best_effort_deadline_ms = 150;
    /** @} */
    double gold_share = 0.25, silver_share = 0.25, best_share = 0.50;
    /** Max tolerated (shed + rejected + expired) / offered. */
    double max_loss_fraction = 0.05;
    /** Gold must ride out the scenario untouched (no rejections, p99
     *  inside deadline). */
    bool expect_gold_protected = false;
    /** Inverted scenario: PASS only when gold protection FAILS. */
    bool expect_overload_failure = false;
    /** Audited-truth SLO must not be alerting at the end. */
    bool check_audit = false;
    /** Breaker must return to closed after the faults stop. */
    bool check_breaker_recovers = false;
};

/** What one scenario produced (summary row + JSONL line). */
struct ScenarioResult {
    ScenarioSpec spec;
    ScenarioStatus status = ScenarioStatus::kError;
    std::vector<std::string> violations;
    rumba::serve::LoadReport report;
    double gold_p99_ms = 0.0;
    double loss_fraction = 0.0;
    bool breaker_recovered = true;
    bool audit_alerting = false;
};

/** Completed-scenario JSONL lines, shared with the signal-flush hook
 *  so a killed matrix still writes what it finished. */
struct ResultSink {
    std::mutex mu;
    std::string path;
    std::vector<std::string> lines;
};

ResultSink&
Sink()
{
    static ResultSink sink;
    return sink;
}

void
WriteSinkLocked(const ResultSink& sink)
{
    if (sink.path.empty())
        return;
    std::FILE* f = std::fopen(sink.path.c_str(), "w");
    if (f == nullptr)
        return;
    const std::string meta = rumba::obs::MetadataJsonLine() + "\n";
    std::fwrite(meta.data(), 1, meta.size(), f);
    for (const std::string& line : sink.lines) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
}

/** Flush hook: best-effort, signal context — try-lock only. */
void
FlushScenarioResults()
{
    ResultSink& sink = Sink();
    if (!sink.mu.try_lock())
        return;
    WriteSinkLocked(sink);
    sink.mu.unlock();
}

std::string
JoinViolations(const std::vector<std::string>& violations)
{
    std::string out;
    for (const std::string& v : violations) {
        if (!out.empty())
            out += "; ";
        out += v;
    }
    return out;
}

std::string
ResultJsonLine(const ScenarioResult& result)
{
    using rumba::obs::JsonNum;
    using rumba::obs::JsonQuote;
    const rumba::serve::ClassStats total = result.report.Total();
    const rumba::serve::ClassStats& gold =
        result.report
            .per_class[static_cast<size_t>(QualityClass::kGold)];
    return std::string("{\"type\":\"scenario\",\"name\":") +
           JsonQuote(result.spec.name) +
           ",\"status\":" + JsonQuote(StatusName(result.status)) +
           ",\"workload\":" + JsonQuote(result.spec.workload) +
           ",\"arrival\":" +
           JsonQuote(ArrivalProcessName(result.spec.arrival)) +
           ",\"fault\":" + JsonQuote(result.spec.fault_spec) +
           ",\"admission\":" +
           (result.spec.admission ? "true" : "false") +
           ",\"offered\":" + std::to_string(result.report.offered) +
           ",\"served\":" + std::to_string(total.Served()) +
           ",\"degraded\":" + std::to_string(total.degraded) +
           ",\"compensated\":" + std::to_string(total.compensated) +
           ",\"bypassed\":" + std::to_string(total.bypassed) +
           ",\"shed\":" + std::to_string(total.shed) +
           ",\"expired\":" + std::to_string(total.expired) +
           ",\"rejected\":" + std::to_string(total.rejected) +
           ",\"gold_submitted\":" + std::to_string(gold.submitted) +
           ",\"gold_served\":" + std::to_string(gold.Served()) +
           ",\"gold_rejected\":" + std::to_string(gold.rejected) +
           ",\"gold_shed\":" + std::to_string(gold.shed) +
           ",\"gold_deadline_misses\":" +
           std::to_string(gold.deadline_misses) +
           ",\"gold_p99_ms\":" + JsonNum(result.gold_p99_ms) +
           ",\"loss_fraction\":" + JsonNum(result.loss_fraction) +
           ",\"expired_with_output\":" +
           std::to_string(result.report.expired_with_output) +
           ",\"late_submits\":" +
           std::to_string(result.report.late_submits) +
           ",\"breaker_recovered\":" +
           (result.breaker_recovered ? "true" : "false") +
           ",\"audit_alerting\":" +
           (result.audit_alerting ? "true" : "false") +
           ",\"violations\":" +
           JsonQuote(JoinViolations(result.violations)) + "}";
}

/** The checked-in matrix. Axes covered: 3 arrival processes, 3 fault
 *  plans (none / NaN storm / recovery stall), admission on and off,
 *  2 workloads — 10 scenarios. */
std::vector<ScenarioSpec>
BuildSpecs()
{
    std::vector<ScenarioSpec> specs;

    {
        ScenarioSpec s;
        s.name = "steady-poisson";
        s.workload = "inversek2j";
        s.arrival = ArrivalProcess::kPoisson;
        s.load_factor = 0.4;
        s.max_loss_fraction = 0.05;
        s.expect_gold_protected = true;
        s.check_audit = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "steady-diurnal";
        s.workload = "fft";
        s.arrival = ArrivalProcess::kDiurnal;
        s.load_factor = 0.3;
        s.diurnal_peak_factor = 2.0;
        s.max_loss_fraction = 0.05;
        s.expect_gold_protected = true;
        s.check_audit = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "burst-2x-admission";
        s.workload = "inversek2j";
        s.arrival = ArrivalProcess::kBursty;
        s.load_factor = 0.5;  // peak = 0.5 x 4 = 2x capacity.
        s.burst_factor = 4.0;
        s.duration_ms = 600;
        s.max_loss_fraction = 0.90;
        s.expect_gold_protected = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "burst-2x-no-admission";
        s.workload = "inversek2j";
        s.arrival = ArrivalProcess::kBursty;
        s.load_factor = 0.5;
        s.burst_factor = 4.0;
        s.duration_ms = 600;
        s.admission = false;
        s.max_loss_fraction = 0.90;
        s.expect_overload_failure = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "sustained-2x-poisson";
        s.workload = "inversek2j";
        s.arrival = ArrivalProcess::kPoisson;
        s.load_factor = 2.0;
        s.duration_ms = 500;
        // Sustained (not transient) 2x: gold must be a minority tier
        // for protection to be possible at all — at a 25% share its
        // demand alone would equal service capacity and every queue
        // would sit pinned at full, making queue-full gold rejections
        // a coin flip rather than a regression signal.
        s.gold_share = 0.15;
        s.silver_share = 0.25;
        s.best_share = 0.60;
        s.max_loss_fraction = 0.90;
        s.expect_gold_protected = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "deadline-burst";
        s.workload = "inversek2j";
        s.arrival = ArrivalProcess::kBursty;
        s.load_factor = 0.5;
        s.burst_factor = 4.0;
        s.duration_ms = 600;
        s.silver_deadline_ms = 6;       // expires in a deep queue.
        s.best_effort_deadline_ms = 6;
        s.max_loss_fraction = 0.90;
        s.expect_gold_protected = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "all-gold-burst";
        s.workload = "fft";
        s.arrival = ArrivalProcess::kBursty;
        s.load_factor = 0.5;
        s.burst_factor = 4.0;
        s.duration_ms = 600;
        s.gold_share = 1.0;
        s.silver_share = 0.0;
        s.best_share = 0.0;
        // All-gold at 2x exceeds what shedding others can buy, so
        // genuine backpressure rejections are expected and loss is
        // bounded only loosely; admission must still never shed gold.
        s.max_loss_fraction = 0.90;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "fault-nan-breaker";
        s.workload = "inversek2j";
        s.arrival = ArrivalProcess::kPoisson;
        s.load_factor = 0.4;
        s.fault_spec = "seed=7;npu.output_nan=0.3";
        s.max_loss_fraction = 0.10;
        s.check_breaker_recovers = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "fault-stall-burst";
        s.workload = "fft";
        s.arrival = ArrivalProcess::kBursty;
        s.load_factor = 0.5;
        s.burst_factor = 4.0;
        s.duration_ms = 600;
        s.fault_spec = "seed=11;npu.output_nan=0.05;queue.stall=0.5";
        s.max_loss_fraction = 0.90;
        s.check_breaker_recovers = true;
        specs.push_back(s);
    }
    {
        ScenarioSpec s;
        s.name = "diurnal-2x-admission";
        s.workload = "fft";
        s.arrival = ArrivalProcess::kDiurnal;
        s.load_factor = 0.8;
        s.diurnal_peak_factor = 2.5;  // peak = 2x capacity.
        s.duration_ms = 500;
        s.gold_share = 0.15;  // minority premium tier (see above).
        s.silver_share = 0.25;
        s.best_share = 0.60;
        s.max_loss_fraction = 0.90;
        s.expect_gold_protected = true;
        specs.push_back(s);
    }
    return specs;
}

rumba::core::RuntimeConfig
ScenarioRuntimeConfig()
{
    return rumba::core::RuntimeConfig::Builder()
        .WithChecker(rumba::core::Scheme::kTree)
        .WithTargetErrorPct(10.0)
        .WithTrainEpochs(30)
        .WithElementCaps(800, 400)
        .Build();
}

rumba::serve::ServeConfig
ScenarioServeConfig(bool admission_enabled)
{
    rumba::serve::ServeConfig config;
    config.shards = kShards;
    config.queue_capacity = kQueueCapacity;
    config.emulated_device_ns = kDeviceNsPerElement;
    config.admission.enabled = admission_enabled;
    // Scenario requests carry only a handful of elements, so the
    // per-invocation audited error is far noisier than the large
    // batches the default audited-SLO bound (tuner target + 2%) was
    // sized for: a healthy checker at a 10% target sees individual
    // 4-element invocations beyond 35% error ~1% of the time. Widen
    // the audited bound and objective so the audited TOQ SLO fires on
    // genuine quality collapse (checker bypassed / drifted), not on
    // small-sample noise.
    config.audit.margin_pct = 30.0;
    config.audit.objective = 0.95;
    // Auto-dumps (breaker trips, first fault) go to scratch — the
    // fault scenarios trip them on purpose and the artifacts would
    // otherwise litter the caller's working directory.
    config.flight.dump_dir = "/tmp";
    return config;
}

/** One in-distribution request drawn from the workload's test pool. */
rumba::serve::InvocationRequest
PoolRequest(size_t width, const std::vector<double>& pool,
            rumba::Rng& rng)
{
    rumba::serve::InvocationRequest request;
    request.count = kElementsPerRequest;
    request.width = width;
    request.inputs.resize(request.count * width);
    const size_t pool_elements = pool.size() / width;
    for (size_t e = 0; e < request.count; ++e) {
        const size_t pick =
            static_cast<size_t>(rng.Below(pool_elements));
        std::copy_n(pool.begin() + static_cast<ptrdiff_t>(pick * width),
                    width,
                    request.inputs.begin() +
                        static_cast<ptrdiff_t>(e * width));
    }
    return request;
}

/**
 * Closed-loop capacity calibration: back-to-back requests through a
 * single-shard engine give the per-request service time; capacity is
 * kShards shards running at that rate.
 */
double
MeasureCapacityHz(const rumba::core::Artifact& artifact,
                  const std::vector<double>& pool)
{
    rumba::serve::ServeConfig config = ScenarioServeConfig(false);
    config.shards = 1;
    config.queue_capacity = 64;
    config.slo.enabled = false;
    config.audit.enabled = false;
    config.profile.enabled = false;
    auto engine = rumba::serve::ShardedEngine::Create(
        artifact, ScenarioRuntimeConfig(), config);
    if (!engine.ok())
        return 0.0;
    rumba::Rng rng(99);
    const size_t width = (*engine)->InputWidth();
    for (int i = 0; i < 16; ++i)  // warm the tuner and caches.
        (void)(*engine)->Submit(PoolRequest(width, pool, rng));
    (*engine)->Drain();
    constexpr int kTimed = 48;
    std::vector<std::future<rumba::serve::InvocationResult>> futures;
    const uint64_t t0 = rumba::obs::NowNs();
    for (int i = 0; i < kTimed; ++i)
        futures.push_back(
            (*engine)->Submit(PoolRequest(width, pool, rng)));
    (*engine)->Drain();
    const uint64_t elapsed_ns = rumba::obs::NowNs() - t0;
    (*engine)->Shutdown();
    if (elapsed_ns == 0)
        return 0.0;
    const double per_request_s =
        static_cast<double>(elapsed_ns) / kTimed / 1e9;
    return static_cast<double>(kShards) / per_request_s;
}

/** Trickle clean gold traffic until every shard's breaker closes (the
 *  breaker advances per invocation: hold-off, probes, close). */
bool
DriveBreakerClosed(rumba::serve::ShardedEngine& engine,
                   const std::vector<double>& pool)
{
    rumba::Rng rng(123);
    const size_t width = engine.InputWidth();
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 16; ++i)
            (void)engine.Submit(PoolRequest(width, pool, rng));
        engine.Drain();
        bool all_closed = true;
        for (size_t s = 0; s < engine.Shards(); ++s)
            all_closed = all_closed &&
                         engine.Runtime(s).Breaker().State() ==
                             rumba::core::BreakerState::kClosed;
        if (all_closed)
            return true;
    }
    return false;
}

ScenarioResult
RunScenario(const ScenarioSpec& spec,
            const rumba::core::Artifact& artifact,
            const std::vector<double>& pool, double capacity_hz,
            uint64_t seed, bool external_fault_plan,
            bool admission_forced_off)
{
    ScenarioResult result;
    result.spec = spec;

    if (external_fault_plan && !spec.fault_spec.empty()) {
        result.status = ScenarioStatus::kSkip;
        result.violations.push_back(
            "external RUMBA_FAULT_PLAN armed; not overriding");
        return result;
    }
    if (admission_forced_off && spec.admission) {
        result.status = ScenarioStatus::kSkip;
        result.violations.push_back(
            "RUMBA_ADMISSION=off forces admission off");
        return result;
    }

    rumba::fault::FaultInjector& injector =
        rumba::fault::FaultInjector::Default();
    if (!spec.fault_spec.empty()) {
        rumba::fault::FaultPlan plan;
        std::string error;
        if (!rumba::fault::FaultPlan::Parse(spec.fault_spec, &plan,
                                            &error)) {
            result.status = ScenarioStatus::kError;
            result.violations.push_back("bad fault spec: " + error);
            return result;
        }
        injector.Arm(plan);
    }

    auto engine_or = rumba::serve::ShardedEngine::Create(
        artifact, ScenarioRuntimeConfig(),
        ScenarioServeConfig(spec.admission));
    if (!engine_or.ok()) {
        if (!spec.fault_spec.empty())
            injector.Disarm();
        result.status = ScenarioStatus::kError;
        result.violations.push_back("engine: " +
                                    engine_or.status().ToString());
        return result;
    }
    std::unique_ptr<rumba::serve::ShardedEngine> engine =
        std::move(engine_or).value();

    rumba::serve::LoadGenConfig load;
    load.arrival = spec.arrival;
    load.rate_hz = std::max(100.0, spec.load_factor * capacity_hz);
    load.duration_ns = spec.duration_ms * 1'000'000ull;
    load.burst_factor = spec.burst_factor;
    load.idle_factor = spec.idle_factor;
    load.burst_on_ns = spec.burst_on_ms * 1'000'000ull;
    load.burst_off_ns = spec.burst_off_ms * 1'000'000ull;
    load.diurnal_peak_factor = spec.diurnal_peak_factor;
    load.seed = seed;
    load.elements = kElementsPerRequest;
    load.element_jitter = 1;
    load.mix.gold = spec.gold_share;
    load.mix.silver = spec.silver_share;
    load.mix.best_effort = spec.best_share;
    load.gold_deadline_ns = spec.gold_deadline_ms * 1'000'000ull;
    load.silver_deadline_ns = spec.silver_deadline_ms * 1'000'000ull;
    load.best_effort_deadline_ns =
        spec.best_effort_deadline_ms * 1'000'000ull;
    load.input_pool = pool;

    rumba::serve::LoadGenerator generator(*engine, load);
    result.report = generator.Run();

    if (!spec.fault_spec.empty())
        injector.Disarm();

    // Settle the audit pipeline before judging its SLO.
    if (engine->Auditor() != nullptr)
        engine->Auditor()->Flush();
    result.audit_alerting = engine->Auditor() != nullptr &&
                            engine->Auditor()->Slo() != nullptr &&
                            engine->Auditor()->Slo()->Alerting();

    if (spec.check_breaker_recovers)
        result.breaker_recovered = DriveBreakerClosed(*engine, pool);

    // ----------------------------------------------- invariants
    const rumba::serve::ClassStats total = result.report.Total();
    const rumba::serve::ClassStats& gold =
        result.report
            .per_class[static_cast<size_t>(QualityClass::kGold)];
    std::vector<std::string>& violations = result.violations;

    const uint64_t accounted = total.ok + total.degraded +
                               total.compensated + total.bypassed +
                               total.shed + total.expired +
                               total.rejected + total.cancelled +
                               total.failed;
    if (accounted != result.report.offered)
        violations.push_back(
            "silent drop: offered " +
            std::to_string(result.report.offered) + " accounted " +
            std::to_string(accounted));
    if (total.failed > 0)
        violations.push_back(std::to_string(total.failed) +
                             " unexpected failures");
    if (total.cancelled > 0)
        violations.push_back(std::to_string(total.cancelled) +
                             " unexpected cancellations");
    if (result.report.expired_with_output > 0)
        violations.push_back(
            "expired work executed (" +
            std::to_string(result.report.expired_with_output) +
            " kDeadlineExceeded results carried outputs)");

    const uint64_t lost = total.shed + total.rejected + total.expired;
    result.loss_fraction =
        result.report.offered == 0
            ? 0.0
            : static_cast<double>(lost) /
                  static_cast<double>(result.report.offered);
    if (result.loss_fraction > spec.max_loss_fraction)
        violations.push_back(
            "loss " + Table::Num(result.loss_fraction, 3) +
            " exceeds bound " +
            Table::Num(spec.max_loss_fraction, 3));

    if (spec.admission && gold.shed > 0)
        violations.push_back("admission shed gold (" +
                             std::to_string(gold.shed) + ")");
    if (gold.bypassed > 0)
        violations.push_back("gold served without checker (" +
                             std::to_string(gold.bypassed) + ")");

    result.gold_p99_ms = gold.LatencyQuantileNs(0.99) / 1e6;
    const uint64_t miss_budget =
        std::max<uint64_t>(2, gold.submitted / 50);
    // Admission observes fill at Submit, so a handful of gold
    // requests can race a queue-full edge even while the ladder holds
    // — protection means gold loss stays under 1%, not literally 0
    // (admission-off loses a quarter of gold, two orders worse).
    const uint64_t reject_budget =
        std::max<uint64_t>(2, gold.submitted / 100);
    const bool gold_protected =
        gold.rejected <= reject_budget && gold.shed == 0 &&
        gold.deadline_misses + gold.expired <= miss_budget &&
        (spec.gold_deadline_ms == 0 ||
         result.gold_p99_ms <=
             static_cast<double>(spec.gold_deadline_ms));
    if (spec.expect_gold_protected && !gold_protected)
        violations.push_back(
            "gold not protected: rejected " +
            std::to_string(gold.rejected) + ", expired " +
            std::to_string(gold.expired) + ", misses " +
            std::to_string(gold.deadline_misses) + ", p99 " +
            Table::Num(result.gold_p99_ms, 1) + " ms vs deadline " +
            std::to_string(spec.gold_deadline_ms) + " ms");
    if (spec.expect_overload_failure && gold_protected)
        violations.push_back(
            "admission-off run unexpectedly protected gold — the "
            "overload is not actually overloading");

    if (spec.check_audit && result.audit_alerting)
        violations.push_back("audited quality SLO is alerting");
    if (spec.check_breaker_recovers && !result.breaker_recovered)
        violations.push_back(
            "breaker did not return to closed after faults stopped");

    engine->Shutdown();
    result.status = violations.empty() ? ScenarioStatus::kPass
                                       : ScenarioStatus::kFail;
    return result;
}

int
Usage()
{
    std::fprintf(
        stderr,
        "usage: rumba_scenarios [--list] [--filter <substr>]\n"
        "                       [--out <results.jsonl>] [--seed <n>]\n"
        "\n"
        "Runs the overload/chaos scenario matrix against the serving\n"
        "engine and prints a PASS/FAIL/ERROR/SKIP summary table.\n"
        "--out (or RUMBA_SCENARIO_OUT) writes JSONL results for\n"
        "`rumba-stat scenarios`; exit 1 on any FAIL or ERROR.\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool list_only = false;
    std::string filter;
    std::string out_path;
    uint64_t base_seed = 1234;
    if (const char* env = std::getenv("RUMBA_SCENARIO_OUT");
        env != nullptr && env[0] != '\0')
        out_path = env;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list_only = true;
        } else if (arg == "--filter" && i + 1 < argc) {
            filter = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            base_seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            return Usage();
        }
    }

    std::vector<ScenarioSpec> specs = BuildSpecs();
    if (!filter.empty()) {
        specs.erase(std::remove_if(specs.begin(), specs.end(),
                                   [&](const ScenarioSpec& s) {
                                       return s.name.find(filter) ==
                                              std::string::npos;
                                   }),
                    specs.end());
    }
    if (list_only) {
        for (const ScenarioSpec& spec : specs)
            std::printf("%s\n", spec.name.c_str());
        return 0;
    }
    if (specs.empty()) {
        std::fprintf(stderr, "rumba_scenarios: no scenario matches\n");
        return 2;
    }

    {
        std::lock_guard<std::mutex> lock(Sink().mu);
        Sink().path = out_path;
    }
    if (!out_path.empty()) {
        rumba::obs::RegisterFlushHook(&FlushScenarioResults);
        rumba::obs::InstallSignalFlush();
    }

    const char* fault_env = std::getenv("RUMBA_FAULT_PLAN");
    const bool external_plan =
        fault_env != nullptr && fault_env[0] != '\0';
    const char* admission_env = std::getenv("RUMBA_ADMISSION");
    const bool admission_forced_off =
        admission_env != nullptr &&
        std::strcmp(admission_env, "off") == 0;
    if (external_plan)
        std::printf("note: external RUMBA_FAULT_PLAN=%s armed; "
                    "fault scenarios will SKIP\n",
                    fault_env);
    if (admission_forced_off)
        std::printf("note: RUMBA_ADMISSION=off; admission scenarios "
                    "will SKIP\n");

    // Train each workload once, keep its test inputs as the traffic
    // pool, and calibrate its capacity.
    std::map<std::string, rumba::core::Artifact> artifacts;
    std::map<std::string, std::vector<double>> pools;
    std::map<std::string, double> capacities;
    for (const ScenarioSpec& spec : specs) {
        if (artifacts.count(spec.workload) != 0)
            continue;
        std::printf("training %s...\n", spec.workload.c_str());
        std::fflush(stdout);
        auto bench = rumba::apps::MakeBenchmark(spec.workload);
        pools[spec.workload] =
            rumba::core::FlattenBatch(bench->TestInputs());
        rumba::core::RumbaRuntime trained(std::move(bench),
                                          ScenarioRuntimeConfig());
        artifacts[spec.workload] = trained.ExportArtifact();
        const double capacity = MeasureCapacityHz(
            artifacts[spec.workload], pools[spec.workload]);
        if (capacity <= 0.0) {
            std::fprintf(stderr,
                         "rumba_scenarios: capacity calibration "
                         "failed for %s\n",
                         spec.workload.c_str());
            return 2;
        }
        capacities[spec.workload] = capacity;
        std::printf("  capacity ~%.0f req/s (%zu shards, %zu-element "
                    "requests, %.0f us/element device)\n",
                    capacity, kShards, kElementsPerRequest,
                    kDeviceNsPerElement / 1e3);
    }

    std::vector<ScenarioResult> results;
    size_t failures = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
        const ScenarioSpec& spec = specs[i];
        std::printf("[%zu/%zu] %s...\n", i + 1, specs.size(),
                    spec.name.c_str());
        std::fflush(stdout);
        ScenarioResult result =
            RunScenario(spec, artifacts[spec.workload],
                        pools[spec.workload],
                        capacities[spec.workload],
                        base_seed + i * 7919, external_plan,
                        admission_forced_off);
        // One retry (fresh seed) on FAIL: the invariants are about
        // the engine, but a transient host stall — scheduler noise,
        // a noisy neighbor pausing the workers mid-run — can starve
        // even an underloaded engine and fail a bound for reasons no
        // code change caused. A genuine regression fails both runs.
        if (result.status == ScenarioStatus::kFail) {
            std::printf("  FAIL (%s) — retrying once with a fresh "
                        "seed to rule out host noise\n",
                        JoinViolations(result.violations).c_str());
            std::fflush(stdout);
            result =
                RunScenario(spec, artifacts[spec.workload],
                            pools[spec.workload],
                            capacities[spec.workload],
                            base_seed + i * 7919 + 104729,
                            external_plan, admission_forced_off);
        }
        if (result.status == ScenarioStatus::kFail ||
            result.status == ScenarioStatus::kError)
            ++failures;
        {
            std::lock_guard<std::mutex> lock(Sink().mu);
            Sink().lines.push_back(ResultJsonLine(result));
            WriteSinkLocked(Sink());  // partial results survive kills.
        }
        results.push_back(std::move(result));
    }

    Table table({"scenario", "workload", "arrival", "fault", "adm",
                 "offered", "served", "shed", "expired", "rejected",
                 "gold p99 ms", "status"});
    for (const ScenarioResult& result : results) {
        const rumba::serve::ClassStats total = result.report.Total();
        table.AddRow(
            {result.spec.name, result.spec.workload,
             ArrivalProcessName(result.spec.arrival),
             result.spec.fault_spec.empty() ? "-"
                                            : result.spec.fault_spec,
             result.spec.admission ? "on" : "off",
             Table::Int(static_cast<long>(result.report.offered)),
             Table::Int(static_cast<long>(total.Served())),
             Table::Int(static_cast<long>(total.shed)),
             Table::Int(static_cast<long>(total.expired)),
             Table::Int(static_cast<long>(total.rejected)),
             Table::Num(result.gold_p99_ms, 1),
             StatusName(result.status)});
    }
    table.Print("scenario matrix");
    for (const ScenarioResult& result : results) {
        if (result.violations.empty())
            continue;
        std::printf("%s %s: %s\n",
                    result.status == ScenarioStatus::kSkip ? "skip"
                                                           : "FAIL",
                    result.spec.name.c_str(),
                    JoinViolations(result.violations).c_str());
    }
    size_t passed = 0, skipped = 0;
    for (const ScenarioResult& result : results) {
        passed += result.status == ScenarioStatus::kPass;
        skipped += result.status == ScenarioStatus::kSkip;
    }
    std::printf("%zu scenarios: %zu pass, %zu fail/error, %zu skip\n",
                results.size(), passed, failures, skipped);
    if (!out_path.empty())
        std::printf("results: %s\n", out_path.c_str());
    return failures == 0 ? 0 : 1;
}
