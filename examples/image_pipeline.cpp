/**
 * @file
 * Image pipeline: Sobel edge detection through the approximate
 * accelerator, with and without Rumba.
 *
 * Produces four PGM images next to the binary —
 *   edge_exact.pgm      the exact Sobel edge map,
 *   edge_unchecked.pgm  the unchecked accelerator's edge map,
 *   edge_rumba.pgm      the Rumba-managed edge map,
 *   edge_fixmask.pgm    which pixels Rumba re-executed —
 * and prints the quality/energy summary. The visual point mirrors the
 * paper's Figure 2: the unchecked map has scattered badly-wrong
 * pixels; Rumba removes exactly those.
 */

#include <cstdio>

#include "apps/sobel.h"
#include "common/imagegen.h"
#include "core/batch_view.h"
#include "core/runtime.h"

using namespace rumba;

int
main()
{
    const size_t kSize = 128;
    const GrayImage source = GenerateSceneImage(kSize, kSize, 0xED6E);
    const auto windows = apps::Sobel::WindowsFromImage(source, 1);
    const size_t out_w = kSize - 2, out_h = kSize - 2;

    // Exact edge map.
    GrayImage exact(out_w, out_h);
    {
        double out = 0.0;
        for (size_t i = 0; i < windows.size(); ++i) {
            apps::Sobel::Kernel(windows[i].data(), &out);
            exact.MutableData()[i] = out;
        }
    }

    // Rumba runtime around sobel, quality mode: fix as much as the
    // CPU can absorb without slowing the accelerator down.
    // Calibrate the starting threshold for a strict 95% quality so
    // the first frame already gets meaningful cleanup; quality mode
    // then trades fixes against CPU headroom on later frames.
    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kTree)
            .WithTunerMode(core::TuningMode::kQuality)
            .WithTargetErrorPct(5.0)
            .Build();
    std::printf("training accelerator network and error predictor...\n");
    core::RumbaRuntime runtime(apps::MakeBenchmark("sobel"), config);

    // One flat buffer backs every invocation below (Sobel outputs one
    // gradient value per window, so outputs index 1:1 with windows).
    const std::vector<double> flat = core::FlattenBatch(windows);
    const core::BatchView view(flat.data(), windows.size(),
                               runtime.Bench().NumInputs());
    std::vector<double> outputs(windows.size() *
                                runtime.Bench().NumOutputs());
    const auto report = runtime.ProcessInvocation(view, outputs.data());

    GrayImage rumba_map(out_w, out_h);
    for (size_t i = 0; i < outputs.size(); ++i)
        rumba_map.MutableData()[i] = outputs[i];

    // Unchecked accelerator map: rebuild the runtime's accelerator
    // result by subtracting the fixes — simplest honest route is a
    // second pass with the threshold forced out of reach.
    const core::RuntimeConfig unchecked_cfg =
        core::RuntimeConfig::Builder(config)
            .WithInitialThreshold(1e6)  // checks never fire.
            .WithThresholdRange(1e6, 1e7)
            .Build();
    core::RumbaRuntime unchecked(apps::MakeBenchmark("sobel"),
                                 unchecked_cfg);
    std::vector<double> raw_outputs(outputs.size());
    const auto raw_report =
        unchecked.ProcessInvocation(view, raw_outputs.data());
    GrayImage raw_map(out_w, out_h);
    for (size_t i = 0; i < raw_outputs.size(); ++i)
        raw_map.MutableData()[i] = raw_outputs[i];

    // Fix mask: where Rumba's output differs from the unchecked one.
    GrayImage fixmask(out_w, out_h);
    for (size_t i = 0; i < outputs.size(); ++i)
        fixmask.MutableData()[i] =
            outputs[i] == raw_outputs[i] ? 0.0 : 1.0;

    exact.WritePgm("edge_exact.pgm");
    raw_map.WritePgm("edge_unchecked.pgm");
    rumba_map.WritePgm("edge_rumba.pgm");
    fixmask.WritePgm("edge_fixmask.pgm");

    std::printf("\nimage: %zux%zu, %zu Sobel windows\n", kSize, kSize,
                windows.size());
    std::printf("unchecked accelerator: %.2f%% output error, %.2fx "
                "energy saving\n",
                raw_report.output_error_pct,
                raw_report.costs.EnergySaving());
    std::printf("rumba (quality mode):  %.2f%% output error, %.2fx "
                "energy saving, %zu fixes (%.1f%%)\n",
                report.output_error_pct, report.costs.EnergySaving(),
                report.fixes,
                100.0 * static_cast<double>(report.fixes) /
                    static_cast<double>(windows.size()));
    std::printf("error reduction: %.2fx\n",
                raw_report.output_error_pct /
                    std::max(1e-9, report.output_error_pct));
    std::printf("wrote edge_{exact,unchecked,rumba,fixmask}.pgm\n");
    return 0;
}
