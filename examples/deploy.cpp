/**
 * @file
 * Train-once / deploy-everywhere: the paper's Figure 4 states that
 * "the configuration parameters for both the approximate accelerator
 * and the error predictor are embedded in the binary". This example
 * plays both roles:
 *
 *   build phase  — runs the offline trainers for inversek2j, exports
 *                  the whole configuration (networks, normalizers,
 *                  checker, calibrated threshold) as an artifact file;
 *   deploy phase — brings the runtime up *from the artifact alone*
 *                  (no training) and verifies it behaves identically;
 *   fault phases — loads a deliberately truncated artifact (graceful
 *                  exact-only fallback, no crash) and then serves
 *                  under an armed NaN fault plan until the circuit
 *                  breaker trips, probes, and closes again.
 */

#include <cstdio>
#include <fstream>

#include "core/runtime.h"
#include "fault/corrupt.h"
#include "fault/injector.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace rumba;

int
main()
{
    const char* kArtifactPath = "inversek2j.rumba";

    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kHybrid)  // offline best-of.
            .WithTunerMode(core::TuningMode::kToq)
            .WithTargetErrorPct(10.0)
            .Build();

    // A RUMBA_FAULT_PLAN in the environment is honored — but during
    // the fault drill below, not during the build/deploy comparison,
    // which is only meaningful over a clean accelerator.
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    const fault::FaultPlan env_plan = injector.Plan();
    if (injector.Armed()) {
        std::printf("[fault] RUMBA_FAULT_PLAN armed (%s); deferring "
                    "it to the fault drill\n",
                    env_plan.ToSpec().c_str());
        injector.Disarm();
    }

    // ---- Build phase ---------------------------------------------------
    std::printf("[build] training networks + checker, calibrating "
                "threshold...\n");
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               config);
    const core::Artifact artifact = trained.ExportArtifact();
    if (!artifact.Save(kArtifactPath)) {
        std::fprintf(stderr, "cannot write %s\n", kArtifactPath);
        return 1;
    }
    std::printf("[build] exported %s (%zu bytes, checker blob tag: "
                "%.20s..., threshold %.4f)\n",
                kArtifactPath, artifact.ToString().size(),
                artifact.predictor.c_str(), artifact.threshold);

    // ---- Deploy phase ---------------------------------------------------
    std::printf("[deploy] loading artifact — no training runs\n");
    const auto loaded = core::Artifact::TryLoad(kArtifactPath);
    if (!loaded.ok()) {
        std::fprintf(stderr, "artifact load: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
    }
    auto deployed_or = core::RumbaRuntime::FromArtifact(*loaded, config);
    if (!deployed_or.ok()) {
        std::fprintf(stderr, "artifact deploy: %s\n",
                     deployed_or.status().ToString().c_str());
        return 1;
    }
    core::RumbaRuntime& deployed = **deployed_or;

    // The whole test set flattened once: every batch below is a
    // zero-copy BatchView window into this one buffer (the hot-path
    // invocation form).
    const auto inputs = deployed.Bench().TestInputs();
    const size_t in_w = deployed.Bench().NumInputs();
    const size_t out_w = deployed.Bench().NumOutputs();
    const std::vector<double> flat_inputs = core::FlattenBatch(inputs);

    constexpr size_t kCompareElements = 2000;
    const core::BatchView batch(flat_inputs.data(), kCompareElements,
                                in_w);
    std::vector<double> out_trained(kCompareElements * out_w);
    std::vector<double> out_deployed(kCompareElements * out_w);
    const auto a = trained.ProcessInvocation(batch, out_trained.data());
    const auto b =
        deployed.ProcessInvocation(batch, out_deployed.data());

    size_t mismatches = 0;
    for (size_t i = 0; i < out_trained.size(); ++i)
        mismatches += out_trained[i] != out_deployed[i];

    std::printf("\n%-24s %-10s %-14s %s\n", "runtime", "fixes",
                "output err %", "threshold");
    std::printf("%-24s %-10zu %-14.2f %.4f\n", "trained (build host)",
                a.fixes, a.output_error_pct, a.threshold_used);
    std::printf("%-24s %-10zu %-14.2f %.4f\n", "deployed (artifact)",
                b.fixes, b.output_error_pct, b.threshold_used);
    std::printf("\noutput mismatches between the two: %zu of %zu "
                "values — the deployed system is\nbit-identical to the "
                "trained one without ever running the trainers.\n",
                mismatches, out_trained.size());

    // ---- Serving loop ----------------------------------------------------
    // Serve the rest of the test set in small batches, the way a
    // deployed binary serves requests — but from a *stale* artifact
    // whose embedded threshold is far too loose (as if the binary were
    // built long before deployment). The online TOQ tuner walks the
    // threshold back toward the quality target between invocations, so
    // a RUMBA_STREAM_OUT capture of this loop records the whole
    // convergence trajectory.
    core::Artifact stale = artifact;
    stale.threshold = artifact.threshold * 8.0;
    core::RumbaRuntime serving(stale, config);
    std::printf("\n[deploy] serving from a stale artifact (threshold "
                "%.4f, calibrated %.4f)\n",
                stale.threshold, artifact.threshold);
    constexpr size_t kServeBatch = 250;
    size_t served = 0;
    size_t serve_fixes = 0;
    std::vector<double> serve_out(kServeBatch * out_w);
    for (size_t start = kCompareElements;
         start + kServeBatch <= inputs.size() && served < 48;
         start += kServeBatch, ++served) {
        const core::BatchView serve(flat_inputs.data() + start * in_w,
                                    kServeBatch, in_w);
        const auto r = serving.ProcessInvocation(serve,
                                                 serve_out.data());
        serve_fixes += r.fixes;
    }
    std::printf("[deploy] served %zu batches of %zu (%zu fixes); the "
                "tuner walked the threshold\n  %.4f -> %.4f "
                "(calibrated %.4f)\n",
                served, kServeBatch, serve_fixes, stale.threshold,
                serving.Threshold(), artifact.threshold);

    // ---- Corrupt-artifact fallback ---------------------------------------
    // A shipped artifact can be truncated or bit-rotted on disk. The
    // v2 blob carries a checksum, TryLoad() reports the damage instead
    // of dying, and the application degrades to exact-only execution.
    const char* kCorruptPath = "inversek2j.corrupt.rumba";
    std::string corrupt_blob = artifact.ToString();
    fault::TruncateBlob(&corrupt_blob, /*keep_fraction=*/0.6);
    {
        std::ofstream out(kCorruptPath);
        out << corrupt_blob;
    }
    const auto damaged = core::Artifact::TryLoad(kCorruptPath);
    const bool corrupt_rejected = !damaged.ok();
    std::remove(kCorruptPath);
    if (corrupt_rejected) {
        std::printf("\n[fault] warning: artifact rejected (%s); "
                    "falling back to exact-only execution\n",
                    damaged.status().ToString().c_str());
        // Exact-only fallback: the kernel runs on the CPU, quality is
        // exact, and the binary keeps serving instead of crashing.
        std::vector<double> exact_out(deployed.Bench().NumOutputs());
        for (size_t i = 0; i < kServeBatch; ++i)
            deployed.Bench().RunExact(inputs[i].data(),
                                      exact_out.data());
        std::printf("[fault] served %zu elements exactly from the "
                    "fallback path\n", kServeBatch);
    } else {
        std::printf("\n[fault] ERROR: truncated artifact was accepted "
                    "— checksum verification failed to catch it\n");
    }

    // ---- Fault drill -----------------------------------------------------
    // Arm a NaN fault plan against a fresh deployed runtime and serve
    // until the circuit breaker trips (degrading to exact-only), then
    // disarm and keep serving until its canary probes close it again:
    // one full closed -> open -> half-open -> closed episode, recorded
    // in the trace ring / stream for any capture to see.
    core::BreakerConfig drill_breaker;
    drill_breaker.trip_after = 2;
    drill_breaker.open_invocations = 2;
    drill_breaker.close_after = 2;
    const core::RuntimeConfig drill_config =
        core::RuntimeConfig::Builder(config)
            .WithBreaker(drill_breaker)
            .Build();
    core::RumbaRuntime drill(artifact, drill_config);

    fault::FaultPlan drill_plan = env_plan;
    if (drill_plan.Empty()) {
        std::string plan_error;
        if (!fault::FaultPlan::Parse("seed=7;npu.output_nan=0.02",
                                     &drill_plan, &plan_error)) {
            std::fprintf(stderr, "drill plan: %s\n",
                         plan_error.c_str());
            return 1;
        }
    }
    injector.Arm(drill_plan);
    std::printf("\n[fault] drill armed: %s\n",
                drill_plan.ToSpec().c_str());

    core::BreakerState last_state = drill.Breaker().State();
    size_t drill_batches = 0;
    auto drill_batch = [&](size_t index) {
        std::vector<std::vector<double>> batch_in;
        batch_in.reserve(kServeBatch);
        for (size_t k = 0; k < kServeBatch; ++k)
            batch_in.push_back(
                inputs[(index * kServeBatch + k) % inputs.size()]);
        std::vector<std::vector<double>> batch_out;
        const auto r = drill.ProcessInvocation(batch_in, &batch_out);
        ++drill_batches;
        if (r.breaker_state != last_state) {
            std::printf("[fault] batch %zu: breaker %s -> %s "
                        "(non-finite %zu, exact %zu)\n",
                        drill_batches,
                        core::BreakerStateName(last_state),
                        core::BreakerStateName(r.breaker_state),
                        r.non_finite_outputs, r.exact_elements);
            last_state = r.breaker_state;
        }
        return r;
    };
    // Faulty phase: serve until the NaN storm opens the breaker.
    for (size_t i = 0;
         i < 16 && drill.Breaker().State() != core::BreakerState::kOpen;
         ++i)
        drill_batch(i);
    // Outage over: the accelerator heals; canary probes close it.
    injector.Disarm();
    for (size_t i = 16;
         i < 32 && drill.Breaker().Closes() == 0; ++i)
        drill_batch(i);

    const double drill_error = drill.Summary().MeanOutputErrorPct();
    const bool drill_ok = drill.Breaker().Trips() >= 1 &&
                          drill.Breaker().Closes() >= 1 &&
                          drill_error <= config.tuner.target_error_pct;
    std::printf("[fault] drill %s: %zu batches, %zu trips, %zu "
                "probes, %zu closes, mean error %.2f%% (target "
                "%.1f%%)\n",
                drill_ok ? "passed" : "FAILED", drill_batches,
                drill.Breaker().Trips(), drill.Breaker().Probes(),
                drill.Breaker().Closes(), drill_error,
                config.tuner.target_error_pct);

    // ---- Telemetry -------------------------------------------------------
    // Everything above was measured by the obs subsystem as a side
    // effect; snapshot it, show the table, and honor RUMBA_METRICS_OUT
    // (e.g. RUMBA_METRICS_OUT=metrics.jsonl ./build/examples/deploy).
    obs::ToTable(obs::Registry::Default().Snapshot())
        .Print("run telemetry (src/obs)");
    const std::string metrics_path = obs::ExportIfConfigured();
    if (!metrics_path.empty())
        std::printf("telemetry written to %s\n", metrics_path.c_str());

    return mismatches == 0 && a.fixes == b.fixes && corrupt_rejected &&
                   drill_ok
               ? 0
               : 1;
}
