/**
 * @file
 * Train-once / deploy-everywhere: the paper's Figure 4 states that
 * "the configuration parameters for both the approximate accelerator
 * and the error predictor are embedded in the binary". This example
 * plays both roles:
 *
 *   build phase  — runs the offline trainers for inversek2j, exports
 *                  the whole configuration (networks, normalizers,
 *                  checker, calibrated threshold) as an artifact file;
 *   deploy phase — brings the runtime up *from the artifact alone*
 *                  (no training) and verifies it behaves identically;
 *   fault phases — loads a deliberately truncated artifact (graceful
 *                  exact-only fallback, no crash) and then serves
 *                  under an armed NaN fault plan until the circuit
 *                  breaker trips, probes, and closes again;
 *   overload     — offers ~2x the engine's service capacity from an
 *                  open-loop bursty load generator and shows the
 *                  admission ladder shedding best-effort and
 *                  degrading silver so gold survives (set
 *                  RUMBA_ADMISSION=off to watch it fail without the
 *                  ladder; RUMBA_LOADGEN_OUT keeps the report);
 *   obs drill    — brings the sharded serving engine up on the same
 *                  artifact with the full observability stack (scrape
 *                  server, request traces, SLO monitors, per-shard
 *                  flight recorders) and storms it with NaNs until
 *                  every breaker opens, auto-dumping flight records
 *                  into RUMBA_FLIGHT_DIR.
 *
 * RUMBA_METRICS_PORT serves /metrics /healthz /statusz live for the
 * whole run; RUMBA_OBS_LINGER_MS keeps the process (and with it the
 * scrape server and /statusz provider) alive at the end so an
 * external scraper — ci.sh, curl, rumba-stat scrape — can inspect it.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>

#include "core/runtime.h"
#include "fault/corrupt.h"
#include "fault/injector.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/slo.h"
#include "serve/engine.h"
#include "serve/loadgen.h"

using namespace rumba;

int
main()
{
    const char* kArtifactPath = "inversek2j.rumba";

    // Live observability first: with RUMBA_METRICS_PORT set, /metrics,
    // /healthz and /statusz serve from here to process exit.
    if (obs::ObservabilityServer::StartFromEnv()) {
        std::printf("[obs] scrape server on 127.0.0.1:%u\n",
                    static_cast<unsigned>(
                        obs::ObservabilityServer::Default().Port()));
    }

    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kHybrid)  // offline best-of.
            .WithTunerMode(core::TuningMode::kToq)
            .WithTargetErrorPct(10.0)
            .WithCompensation()  // three-tier recovery in production.
            .Build();

    // A RUMBA_FAULT_PLAN in the environment is honored — but during
    // the fault drill below, not during the build/deploy comparison,
    // which is only meaningful over a clean accelerator.
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    const fault::FaultPlan env_plan = injector.Plan();
    if (injector.Armed()) {
        std::printf("[fault] RUMBA_FAULT_PLAN armed (%s); deferring "
                    "it to the fault drill\n",
                    env_plan.ToSpec().c_str());
        injector.Disarm();
    }

    // ---- Build phase ---------------------------------------------------
    std::printf("[build] training networks + checker, calibrating "
                "threshold...\n");
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               config);
    const core::Artifact artifact = trained.ExportArtifact();
    if (!artifact.Save(kArtifactPath)) {
        std::fprintf(stderr, "cannot write %s\n", kArtifactPath);
        return 1;
    }
    std::printf("[build] exported %s (%zu bytes, checker blob tag: "
                "%.20s..., threshold %.4f)\n",
                kArtifactPath, artifact.ToString().size(),
                artifact.predictor.c_str(), artifact.threshold);

    // ---- Deploy phase ---------------------------------------------------
    std::printf("[deploy] loading artifact — no training runs\n");
    const auto loaded = core::Artifact::TryLoad(kArtifactPath);
    if (!loaded.ok()) {
        std::fprintf(stderr, "artifact load: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
    }
    auto deployed_or = core::RumbaRuntime::FromArtifact(*loaded, config);
    if (!deployed_or.ok()) {
        std::fprintf(stderr, "artifact deploy: %s\n",
                     deployed_or.status().ToString().c_str());
        return 1;
    }
    core::RumbaRuntime& deployed = **deployed_or;

    // The whole test set flattened once: every batch below is a
    // zero-copy BatchView window into this one buffer (the hot-path
    // invocation form).
    const auto inputs = deployed.Bench().TestInputs();
    const size_t in_w = deployed.Bench().NumInputs();
    const size_t out_w = deployed.Bench().NumOutputs();
    const std::vector<double> flat_inputs = core::FlattenBatch(inputs);

    constexpr size_t kCompareElements = 2000;
    const core::BatchView batch(flat_inputs.data(), kCompareElements,
                                in_w);
    std::vector<double> out_trained(kCompareElements * out_w);
    std::vector<double> out_deployed(kCompareElements * out_w);
    const auto a = trained.ProcessInvocation(batch, out_trained.data());
    const auto b =
        deployed.ProcessInvocation(batch, out_deployed.data());

    size_t mismatches = 0;
    for (size_t i = 0; i < out_trained.size(); ++i)
        mismatches += out_trained[i] != out_deployed[i];

    std::printf("\n%-24s %-10s %-14s %s\n", "runtime", "fixes",
                "output err %", "threshold");
    std::printf("%-24s %-10zu %-14.2f %.4f\n", "trained (build host)",
                a.fixes, a.output_error_pct, a.threshold_used);
    std::printf("%-24s %-10zu %-14.2f %.4f\n", "deployed (artifact)",
                b.fixes, b.output_error_pct, b.threshold_used);
    std::printf("\noutput mismatches between the two: %zu of %zu "
                "values — the deployed system is\nbit-identical to the "
                "trained one without ever running the trainers.\n",
                mismatches, out_trained.size());

    // ---- Serving loop ----------------------------------------------------
    // Serve the rest of the test set in small batches, the way a
    // deployed binary serves requests — but from a *stale* artifact
    // whose embedded threshold is far too loose (as if the binary were
    // built long before deployment). The online TOQ tuner walks the
    // threshold back toward the quality target between invocations, so
    // a RUMBA_STREAM_OUT capture of this loop records the whole
    // convergence trajectory.
    core::Artifact stale = artifact;
    stale.threshold = artifact.threshold * 8.0;
    core::RumbaRuntime serving(stale, config);
    std::printf("\n[deploy] serving from a stale artifact (threshold "
                "%.4f, calibrated %.4f)\n",
                stale.threshold, artifact.threshold);
    constexpr size_t kServeBatch = 250;
    size_t served = 0;
    size_t serve_fixes = 0;
    std::vector<double> serve_out(kServeBatch * out_w);
    for (size_t start = kCompareElements;
         start + kServeBatch <= inputs.size() && served < 48;
         start += kServeBatch, ++served) {
        const core::BatchView serve(flat_inputs.data() + start * in_w,
                                    kServeBatch, in_w);
        const auto r = serving.ProcessInvocation(serve,
                                                 serve_out.data());
        serve_fixes += r.fixes;
    }
    std::printf("[deploy] served %zu batches of %zu (%zu fixes); the "
                "tuner walked the threshold\n  %.4f -> %.4f "
                "(calibrated %.4f)\n",
                served, kServeBatch, serve_fixes, stale.threshold,
                serving.Threshold(), artifact.threshold);

    // ---- Corrupt-artifact fallback ---------------------------------------
    // A shipped artifact can be truncated or bit-rotted on disk. The
    // v2 blob carries a checksum, TryLoad() reports the damage instead
    // of dying, and the application degrades to exact-only execution.
    const char* kCorruptPath = "inversek2j.corrupt.rumba";
    std::string corrupt_blob = artifact.ToString();
    fault::TruncateBlob(&corrupt_blob, /*keep_fraction=*/0.6);
    {
        std::ofstream out(kCorruptPath);
        out << corrupt_blob;
    }
    const auto damaged = core::Artifact::TryLoad(kCorruptPath);
    const bool corrupt_rejected = !damaged.ok();
    std::remove(kCorruptPath);
    if (corrupt_rejected) {
        std::printf("\n[fault] warning: artifact rejected (%s); "
                    "falling back to exact-only execution\n",
                    damaged.status().ToString().c_str());
        // Exact-only fallback: the kernel runs on the CPU, quality is
        // exact, and the binary keeps serving instead of crashing.
        std::vector<double> exact_out(deployed.Bench().NumOutputs());
        for (size_t i = 0; i < kServeBatch; ++i)
            deployed.Bench().RunExact(inputs[i].data(),
                                      exact_out.data());
        std::printf("[fault] served %zu elements exactly from the "
                    "fallback path\n", kServeBatch);
    } else {
        std::printf("\n[fault] ERROR: truncated artifact was accepted "
                    "— checksum verification failed to catch it\n");
    }

    // ---- Fault drill -----------------------------------------------------
    // Arm a NaN fault plan against a fresh deployed runtime and serve
    // until the circuit breaker trips (degrading to exact-only), then
    // disarm and keep serving until its canary probes close it again:
    // one full closed -> open -> half-open -> closed episode, recorded
    // in the trace ring / stream for any capture to see.
    core::BreakerConfig drill_breaker;
    drill_breaker.trip_after = 2;
    drill_breaker.open_invocations = 2;
    drill_breaker.close_after = 2;
    const core::RuntimeConfig drill_config =
        core::RuntimeConfig::Builder(config)
            .WithBreaker(drill_breaker)
            .Build();
    core::RumbaRuntime drill(artifact, drill_config);

    fault::FaultPlan drill_plan = env_plan;
    if (drill_plan.Empty()) {
        std::string plan_error;
        if (!fault::FaultPlan::Parse("seed=7;npu.output_nan=0.02",
                                     &drill_plan, &plan_error)) {
            std::fprintf(stderr, "drill plan: %s\n",
                         plan_error.c_str());
            return 1;
        }
    }
    injector.Arm(drill_plan);
    std::printf("\n[fault] drill armed: %s\n",
                drill_plan.ToSpec().c_str());

    core::BreakerState last_state = drill.Breaker().State();
    size_t drill_batches = 0;
    std::vector<double> drill_in;
    std::vector<double> drill_out(kServeBatch * out_w);
    auto drill_batch = [&](size_t index) {
        drill_in.clear();
        drill_in.reserve(kServeBatch * in_w);
        for (size_t k = 0; k < kServeBatch; ++k) {
            const auto& row =
                inputs[(index * kServeBatch + k) % inputs.size()];
            drill_in.insert(drill_in.end(), row.begin(), row.end());
        }
        const auto r = drill.ProcessInvocation(
            core::BatchView(drill_in.data(), kServeBatch, in_w),
            drill_out.data());
        ++drill_batches;
        if (r.breaker_state != last_state) {
            std::printf("[fault] batch %zu: breaker %s -> %s "
                        "(non-finite %zu, exact %zu)\n",
                        drill_batches,
                        core::BreakerStateName(last_state),
                        core::BreakerStateName(r.breaker_state),
                        r.non_finite_outputs, r.exact_elements);
            last_state = r.breaker_state;
        }
        return r;
    };
    // Faulty phase: serve until the NaN storm opens the breaker.
    for (size_t i = 0;
         i < 16 && drill.Breaker().State() != core::BreakerState::kOpen;
         ++i)
        drill_batch(i);
    // Outage over: the accelerator heals; canary probes close it.
    injector.Disarm();
    for (size_t i = 16;
         i < 32 && drill.Breaker().Closes() == 0; ++i)
        drill_batch(i);

    const double drill_error = drill.Summary().MeanOutputErrorPct();
    const bool drill_ok = drill.Breaker().Trips() >= 1 &&
                          drill.Breaker().Closes() >= 1 &&
                          drill_error <= config.tuner.target_error_pct;
    std::printf("[fault] drill %s: %zu batches, %zu trips, %zu "
                "probes, %zu closes, mean error %.2f%% (target "
                "%.1f%%)\n",
                drill_ok ? "passed" : "FAILED", drill_batches,
                drill.Breaker().Trips(), drill.Breaker().Probes(),
                drill.Breaker().Closes(), drill_error,
                config.tuner.target_error_pct);

    // ---- Audit drill -----------------------------------------------------
    // The ground-truth auditor is the only instrument that can see a
    // *miscalibrated checker*: arm a verdict-flipping fault plan so
    // the checker silently accepts elements it should have recovered,
    // and let the shadow exact re-execution path measure what the
    // proxy metrics cannot — false-negative accepts, the true (not
    // predicted) TOQ-violation rate, and an audited-quality SLO burn.
    serve::ServeConfig audit_config;
    audit_config.shards = 2;
    audit_config.queue_capacity = 32;
    audit_config.audit.sample_every = 1;  // drill: audit everything.
    audit_config.audit.queue_capacity = 512;
    audit_config.audit.threads = 2;
    audit_config.audit.margin_pct = 0.0;  // audited bound = target.
    audit_config.audit.min_events = 10;

    auto audit_engine_or = serve::ShardedEngine::Create(
        artifact, config, audit_config);
    if (!audit_engine_or.ok()) {
        std::fprintf(stderr, "audit engine: %s\n",
                     audit_engine_or.status().ToString().c_str());
        return 1;
    }
    serve::ShardedEngine& audit_engine = **audit_engine_or;

    std::atomic<size_t> audited_slo_fires{0};
    if (audit_engine.Auditor() != nullptr &&
        audit_engine.Auditor()->Slo() != nullptr) {
        audit_engine.Auditor()->Slo()->SetAlertSink(
            [&audited_slo_fires](const obs::SloAlert& alert) {
                if (alert.firing)
                    audited_slo_fires.fetch_add(
                        1, std::memory_order_relaxed);
                std::printf("[audit] SLO '%s' %s (fast burn %.1f, "
                            "slow %.1f) — measured, not predicted\n",
                            alert.name.c_str(),
                            alert.firing ? "FIRING" : "cleared",
                            alert.fast_burn, alert.slow_burn);
            });
    }

    fault::FaultPlan audit_plan;
    std::string audit_plan_error;
    if (!fault::FaultPlan::Parse("seed=13;checker.mispredict=0.4",
                                 &audit_plan, &audit_plan_error)) {
        std::fprintf(stderr, "audit plan: %s\n",
                     audit_plan_error.c_str());
        return 1;
    }
    injector.Arm(audit_plan);
    std::printf("\n[audit] drill armed: %s — checker verdicts flip, "
                "shadow exact re-execution watches\n",
                audit_plan.ToSpec().c_str());

    std::set<uint64_t> audit_trace_ids;
    for (size_t r = 0; r < 32; ++r) {
        serve::InvocationRequest request;
        const size_t start =
            (r * kServeBatch) % (inputs.size() - kServeBatch);
        request.inputs.assign(
            flat_inputs.begin()
                + static_cast<ptrdiff_t>(start * in_w),
            flat_inputs.begin()
                + static_cast<ptrdiff_t>((start + kServeBatch) * in_w));
        request.count = kServeBatch;
        request.width = in_w;
        request.shard = static_cast<int>(r % audit_config.shards);
        const auto result =
            audit_engine.Submit(std::move(request)).get();
        if (result.status.ok())
            audit_trace_ids.insert(result.trace_id);
    }
    injector.Disarm();
    audit_engine.Drain();

    bool audit_ok = false;
    if (audit_engine.Auditor() != nullptr) {
        obs::QualityAuditor& auditor = *audit_engine.Auditor();
        auditor.Flush();
        const obs::AuditorStats audit_stats = auditor.Stats();

        // Every audited TOQ miss must join back to a kept request
        // trace through its trace id (the span tree of the request
        // that produced the bad output).
        size_t misses = 0, misses_joined = 0;
        std::set<uint64_t> kept_audited_ids;
        for (const auto& trace :
             obs::RequestTraceCollector::Default().Dump()) {
            if (trace.audited)
                kept_audited_ids.insert(trace.trace_id);
        }
        for (const auto& result : auditor.RecentResults()) {
            if (!result.toq_violation)
                continue;
            ++misses;
            misses_joined +=
                kept_audited_ids.count(result.trace_id) > 0 &&
                audit_trace_ids.count(result.trace_id) > 0;
        }

        audit_ok = audit_stats.audited > 0 &&
                   audit_stats.false_negatives > 0 &&
                   audit_stats.toq_violations > 0 &&
                   audited_slo_fires.load() >= 1 &&
                   misses == misses_joined;
        std::printf(
            "[audit] drill %s: %llu audited (%llu forced, %llu "
            "elements), true TOQ violations %llu (rate %.3f, bound "
            "%.2f%%)\n",
            audit_ok ? "passed" : "FAILED",
            static_cast<unsigned long long>(audit_stats.audited),
            static_cast<unsigned long long>(audit_stats.forced),
            static_cast<unsigned long long>(
                audit_stats.audited_elements),
            static_cast<unsigned long long>(
                audit_stats.toq_violations),
            audit_stats.toq_violation_rate,
            audit_stats.toq_bound_pct);
        std::printf(
            "[audit] checker calibration under the flip plan: "
            "precision %.3f, recall %.3f (%llu false-negative "
            "accepts, %llu false-positive recoveries)\n",
            audit_stats.precision, audit_stats.recall,
            static_cast<unsigned long long>(
                audit_stats.false_negatives),
            static_cast<unsigned long long>(
                audit_stats.false_positives));
        std::printf("[audit] %zu of %zu audited misses join a kept "
                    "request trace; audited SLO fired %zu time(s)\n",
                    misses_joined, misses, audited_slo_fires.load());
        std::printf("[audit] statusz: %s\n",
                    audit_engine.StatuszJson().c_str());
    } else {
        std::printf("[audit] drill skipped: auditor disabled "
                    "(RUMBA_AUDIT_SAMPLE_N=0?)\n");
        audit_ok = std::getenv("RUMBA_AUDIT_SAMPLE_N") != nullptr;
    }
    audit_engine.Shutdown();

    // ---- Overload drill --------------------------------------------------
    // Surviving overload: an *open-loop* bursty load generator offers
    // ~2x the engine's service capacity regardless of how the engine
    // copes (a closed-loop driver could never overload anything), and
    // deadline-aware admission control sheds best-effort traffic and
    // degrades silver so gold rides the burst out. Set
    // RUMBA_ADMISSION=off to watch the same burst take gold down with
    // everything else, and RUMBA_LOADGEN_OUT=loadgen.jsonl to keep
    // the per-class report.
    serve::ServeConfig overload_config;
    overload_config.shards = 2;
    overload_config.queue_capacity = 32;
    overload_config.emulated_device_ns = 50'000;  // 50 us / element.
    if (const char* flight_dir = std::getenv("RUMBA_FLIGHT_DIR");
        flight_dir != nullptr && flight_dir[0] != '\0')
        overload_config.flight.dump_dir = flight_dir;

    auto overload_engine_or = serve::ShardedEngine::Create(
        artifact, config, overload_config);
    if (!overload_engine_or.ok()) {
        std::fprintf(stderr, "overload engine: %s\n",
                     overload_engine_or.status().ToString().c_str());
        return 1;
    }
    serve::ShardedEngine& overload_engine = **overload_engine_or;
    const bool admission_on =
        overload_engine.Admission()->config().enabled;

    serve::LoadGenConfig load;
    load.arrival = serve::ArrivalProcess::kBursty;
    // Service time is pinned by the emulated device: 4 elements x
    // 50 us over 2 shards = 10k req/s capacity. Mean 5k req/s with
    // 4x bursts = 2x capacity at the peaks.
    load.rate_hz = 5000.0;
    load.burst_factor = 4.0;
    load.duration_ns = 300'000'000ull;  // 300 ms of schedule.
    load.elements = 4;
    load.seed = 17;
    load.input_pool = flat_inputs;
    load.gold_deadline_ns = 50'000'000ull;
    load.silver_deadline_ns = 100'000'000ull;
    load.best_effort_deadline_ns = 30'000'000ull;
    if (const char* loadgen_out = std::getenv("RUMBA_LOADGEN_OUT");
        loadgen_out != nullptr && loadgen_out[0] != '\0')
        load.jsonl_out = loadgen_out;

    std::printf("\n[overload] drill armed: bursty open loop, mean "
                "%.0f req/s with %.0fx bursts vs ~10000 req/s "
                "capacity, admission %s\n",
                load.rate_hz, load.burst_factor,
                admission_on ? "on" : "OFF (RUMBA_ADMISSION=off)");
    serve::LoadGenerator overload_gen(overload_engine, load);
    const serve::LoadReport overload_report = overload_gen.Run();
    overload_engine.Shutdown();

    uint64_t overload_submitted = 0;
    bool overload_accounted = true;
    for (size_t c = 0; c < serve::kNumQualityClasses; ++c) {
        const serve::ClassStats& cls = overload_report.per_class[c];
        overload_submitted += cls.submitted;
        overload_accounted =
            overload_accounted &&
            cls.submitted == cls.ok + cls.degraded + cls.compensated +
                                 cls.bypassed + cls.shed +
                                 cls.expired + cls.rejected +
                                 cls.cancelled + cls.failed;
        std::printf("[overload] %-11s submitted %-5llu served %-5llu "
                    "(compensated %llu, degraded %llu, bypassed "
                    "%llu) shed %-4llu "
                    "expired %-4llu rejected %-4llu p99 %.1f ms\n",
                    serve::QualityClassName(
                        static_cast<serve::QualityClass>(c)),
                    static_cast<unsigned long long>(cls.submitted),
                    static_cast<unsigned long long>(cls.Served()),
                    static_cast<unsigned long long>(cls.compensated),
                    static_cast<unsigned long long>(cls.degraded),
                    static_cast<unsigned long long>(cls.bypassed),
                    static_cast<unsigned long long>(cls.shed),
                    static_cast<unsigned long long>(cls.expired),
                    static_cast<unsigned long long>(cls.rejected),
                    cls.LatencyQuantileNs(0.99) / 1e6);
    }
    const serve::ClassStats& overload_gold =
        overload_report.per_class[static_cast<size_t>(
            serve::QualityClass::kGold)];
    // Timing-free invariants only (CI runs this under sanitizers):
    // nothing lost silently, expired work never executed, and with
    // admission on gold is never shed or check-bypassed.
    const bool overload_ok =
        overload_accounted &&
        overload_submitted == overload_report.offered &&
        overload_report.expired_with_output == 0 &&
        overload_report.Total().failed == 0 &&
        (!admission_on ||
         (overload_gold.shed == 0 && overload_gold.bypassed == 0));
    std::printf("[overload] drill %s: %llu offered, %llu late "
                "submits, admission state '%s' after the storm%s\n",
                overload_ok ? "passed" : "FAILED",
                static_cast<unsigned long long>(
                    overload_report.offered),
                static_cast<unsigned long long>(
                    overload_report.late_submits),
                serve::AdmissionStateName(
                    overload_engine.Admission()->state()),
                load.jsonl_out.empty()
                    ? ""
                    : (" — report in " + load.jsonl_out).c_str());

    // ---- Observability drill ---------------------------------------------
    // The serving engine ties the whole observability stack together:
    // every Submit gets a request trace, every completion lands in its
    // shard's flight recorder, SLO monitors watch latency and quality
    // burn rates, and /statusz reports per-shard state while the
    // engine lives. Storm a two-shard engine with NaNs until both
    // breakers open — each trip auto-dumps that shard's flight
    // recorder (the requests leading into the incident) to disk.
    serve::ServeConfig obs_config;
    obs_config.shards = 2;
    obs_config.queue_capacity = 32;
    obs_config.trace.sample_every = 4;
    // Flight dumps land in RUMBA_FLIGHT_DIR; explicitly the current
    // working directory otherwise (flight-shard*.jsonl is gitignored,
    // but point this somewhere durable in a real deployment).
    obs_config.flight.dump_dir = ".";
    if (const char* flight_dir = std::getenv("RUMBA_FLIGHT_DIR");
        flight_dir != nullptr && flight_dir[0] != '\0')
        obs_config.flight.dump_dir = flight_dir;

    auto obs_engine_or = serve::ShardedEngine::Create(
        artifact, drill_config, obs_config);
    if (!obs_engine_or.ok()) {
        std::fprintf(stderr, "obs engine: %s\n",
                     obs_engine_or.status().ToString().c_str());
        return 1;
    }
    serve::ShardedEngine& obs_engine = **obs_engine_or;

    // The alert sink is where a deployment pages an operator or
    // forces a breaker canary probe; here it narrates the edges.
    std::atomic<size_t> slo_edges{0};
    const auto alert_sink = [&slo_edges](const obs::SloAlert& alert) {
        slo_edges.fetch_add(1, std::memory_order_relaxed);
        std::printf("[obs] SLO '%s' %s (fast burn %.1f, slow %.1f)\n",
                    alert.name.c_str(),
                    alert.firing ? "FIRING — requesting breaker probe"
                                 : "cleared",
                    alert.fast_burn, alert.slow_burn);
    };
    if (obs_engine.QualitySlo() != nullptr)
        obs_engine.QualitySlo()->SetAlertSink(alert_sink);
    if (obs_engine.LatencySlo() != nullptr)
        obs_engine.LatencySlo()->SetAlertSink(alert_sink);

    const uint64_t dumps_before =
        obs::Registry::Default()
            .GetCounter("serve.flight_dumps")
            ->Value();

    fault::FaultPlan storm_plan;
    std::string storm_error;
    if (!fault::FaultPlan::Parse("seed=11;npu.output_nan=0.5",
                                 &storm_plan, &storm_error)) {
        std::fprintf(stderr, "storm plan: %s\n", storm_error.c_str());
        return 1;
    }
    injector.Arm(storm_plan);
    const auto both_open = [&] {
        for (size_t s = 0; s < obs_engine.Shards(); ++s) {
            if (obs_engine.Runtime(s).Breaker().State() !=
                core::BreakerState::kOpen)
                return false;
        }
        return true;
    };
    size_t obs_requests = 0;
    for (size_t r = 0; r < 32 && !both_open(); ++r, ++obs_requests) {
        serve::InvocationRequest request;
        const size_t start =
            (r * kServeBatch) % (inputs.size() - kServeBatch);
        request.inputs.assign(
            flat_inputs.begin()
                + static_cast<ptrdiff_t>(start * in_w),
            flat_inputs.begin()
                + static_cast<ptrdiff_t>((start + kServeBatch) * in_w));
        request.count = kServeBatch;
        request.width = in_w;
        request.shard = static_cast<int>(r % obs_config.shards);
        obs_engine.Submit(std::move(request)).get();
    }
    injector.Disarm();
    obs_engine.Drain();

    size_t obs_trips = 0;
    for (size_t s = 0; s < obs_engine.Shards(); ++s)
        obs_trips += obs_engine.Runtime(s).Breaker().Trips();
    const uint64_t flight_dumps =
        obs::Registry::Default()
            .GetCounter("serve.flight_dumps")
            ->Value() -
        dumps_before;
    const bool obs_ok = obs_trips >= 1 && flight_dumps >= 1;
    std::printf("\n[obs] drill %s: %zu requests, %zu breaker trips, "
                "%llu flight dumps into %s, %zu SLO edges\n",
                obs_ok ? "passed" : "FAILED", obs_requests, obs_trips,
                static_cast<unsigned long long>(flight_dumps),
                obs_config.flight.dump_dir.c_str(),
                slo_edges.load());
    std::printf("[obs] statusz: %s\n",
                obs_engine.StatuszJson().c_str());

    // Keep the engine (and its /statusz provider) up long enough for
    // an external scraper to look around, when asked to.
    if (const char* linger_env = std::getenv("RUMBA_OBS_LINGER_MS")) {
        const long linger_ms = std::strtol(linger_env, nullptr, 10);
        if (linger_ms > 0) {
            std::printf("[obs] lingering %ld ms for scrapers...\n",
                        linger_ms);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(linger_ms));
        }
    }
    obs_engine.Shutdown();

    // ---- Telemetry -------------------------------------------------------
    // Everything above was measured by the obs subsystem as a side
    // effect; snapshot it, show the table, and honor RUMBA_METRICS_OUT
    // (e.g. RUMBA_METRICS_OUT=metrics.jsonl ./build/examples/deploy).
    obs::ToTable(obs::Registry::Default().Snapshot())
        .Print("run telemetry (src/obs)");
    const std::string metrics_path = obs::ExportIfConfigured();
    if (!metrics_path.empty())
        std::printf("telemetry written to %s\n", metrics_path.c_str());

    return mismatches == 0 && a.fixes == b.fixes && corrupt_rejected &&
                   drill_ok && audit_ok && overload_ok && obs_ok
               ? 0
               : 1;
}
