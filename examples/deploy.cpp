/**
 * @file
 * Train-once / deploy-everywhere: the paper's Figure 4 states that
 * "the configuration parameters for both the approximate accelerator
 * and the error predictor are embedded in the binary". This example
 * plays both roles:
 *
 *   build phase  — runs the offline trainers for inversek2j, exports
 *                  the whole configuration (networks, normalizers,
 *                  checker, calibrated threshold) as an artifact file;
 *   deploy phase — brings the runtime up *from the artifact alone*
 *                  (no training) and verifies it behaves identically.
 */

#include <cstdio>

#include "core/runtime.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace rumba;

int
main()
{
    const char* kArtifactPath = "inversek2j.rumba";

    core::RuntimeConfig config;
    config.checker = core::Scheme::kHybrid;  // offline best-of choice.
    config.tuner.mode = core::TuningMode::kToq;
    config.tuner.target_error_pct = 10.0;

    // ---- Build phase ---------------------------------------------------
    std::printf("[build] training networks + checker, calibrating "
                "threshold...\n");
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               config);
    const core::Artifact artifact = trained.ExportArtifact();
    if (!artifact.Save(kArtifactPath)) {
        std::fprintf(stderr, "cannot write %s\n", kArtifactPath);
        return 1;
    }
    std::printf("[build] exported %s (%zu bytes, checker blob tag: "
                "%.20s..., threshold %.4f)\n",
                kArtifactPath, artifact.ToString().size(),
                artifact.predictor.c_str(), artifact.threshold);

    // ---- Deploy phase ---------------------------------------------------
    std::printf("[deploy] loading artifact — no training runs\n");
    core::RumbaRuntime deployed(core::Artifact::Load(kArtifactPath),
                                config);

    const auto inputs = deployed.Bench().TestInputs();
    std::vector<std::vector<double>> batch(inputs.begin(),
                                           inputs.begin() + 2000);
    std::vector<std::vector<double>> out_trained, out_deployed;
    const auto a = trained.ProcessInvocation(batch, &out_trained);
    const auto b = deployed.ProcessInvocation(batch, &out_deployed);

    size_t mismatches = 0;
    for (size_t i = 0; i < out_trained.size(); ++i)
        for (size_t o = 0; o < out_trained[i].size(); ++o)
            mismatches += out_trained[i][o] != out_deployed[i][o];

    std::printf("\n%-24s %-10s %-14s %s\n", "runtime", "fixes",
                "output err %", "threshold");
    std::printf("%-24s %-10zu %-14.2f %.4f\n", "trained (build host)",
                a.fixes, a.output_error_pct, a.threshold_used);
    std::printf("%-24s %-10zu %-14.2f %.4f\n", "deployed (artifact)",
                b.fixes, b.output_error_pct, b.threshold_used);
    std::printf("\noutput mismatches between the two: %zu of %zu "
                "values — the deployed system is\nbit-identical to the "
                "trained one without ever running the trainers.\n",
                mismatches,
                out_trained.size() * deployed.Bench().NumOutputs());

    // ---- Serving loop ----------------------------------------------------
    // Serve the rest of the test set in small batches, the way a
    // deployed binary serves requests — but from a *stale* artifact
    // whose embedded threshold is far too loose (as if the binary were
    // built long before deployment). The online TOQ tuner walks the
    // threshold back toward the quality target between invocations, so
    // a RUMBA_STREAM_OUT capture of this loop records the whole
    // convergence trajectory.
    core::Artifact stale = artifact;
    stale.threshold = artifact.threshold * 8.0;
    core::RumbaRuntime serving(stale, config);
    std::printf("\n[deploy] serving from a stale artifact (threshold "
                "%.4f, calibrated %.4f)\n",
                stale.threshold, artifact.threshold);
    constexpr size_t kServeBatch = 250;
    size_t served = 0;
    size_t serve_fixes = 0;
    for (size_t start = 2000;
         start + kServeBatch <= inputs.size() && served < 48;
         start += kServeBatch, ++served) {
        std::vector<std::vector<double>> serve(
            inputs.begin() + static_cast<long>(start),
            inputs.begin() + static_cast<long>(start + kServeBatch));
        std::vector<std::vector<double>> serve_out;
        const auto r = serving.ProcessInvocation(serve, &serve_out);
        serve_fixes += r.fixes;
    }
    std::printf("[deploy] served %zu batches of %zu (%zu fixes); the "
                "tuner walked the threshold\n  %.4f -> %.4f "
                "(calibrated %.4f)\n",
                served, kServeBatch, serve_fixes, stale.threshold,
                serving.Threshold(), artifact.threshold);

    // ---- Telemetry -------------------------------------------------------
    // Everything above was measured by the obs subsystem as a side
    // effect; snapshot it, show the table, and honor RUMBA_METRICS_OUT
    // (e.g. RUMBA_METRICS_OUT=metrics.jsonl ./build/examples/deploy).
    obs::ToTable(obs::Registry::Default().Snapshot())
        .Print("run telemetry (src/obs)");
    const std::string metrics_path = obs::ExportIfConfigured();
    if (!metrics_path.empty())
        std::printf("telemetry written to %s\n", metrics_path.c_str());

    return mismatches == 0 && a.fixes == b.fixes ? 0 : 1;
}
