/**
 * @file
 * Quickstart: the smallest complete Rumba program.
 *
 * It builds the online quality-management runtime around one of the
 * bundled benchmarks (sobel), streams a batch of elements through the
 * approximate accelerator with continuous error checking, and prints
 * what Rumba did: how many checks fired, what was re-executed, and
 * the resulting output quality and modeled energy/speedup.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/runtime.h"

using namespace rumba;

int
main()
{
    // 1. Configure the system: which checker to attach to the
    //    accelerator and what goal the online tuner should chase.
    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kTree)      // treeErrors.
            .WithTunerMode(core::TuningMode::kToq)  // target a quality.
            .WithTargetErrorPct(10.0)               // 90% quality.
            .Build();

    // 2. Build the runtime. This runs the offline half of the paper's
    //    Figure 4: trains the accelerator's neural network on the
    //    benchmark's training data, trains the error predictor on the
    //    accelerator's observed errors, and configures the NPU.
    std::printf("training accelerator network and error predictor...\n");
    core::RumbaRuntime runtime(apps::MakeBenchmark("sobel"), config);

    // 3. Stream work through it. One ProcessInvocation() is one
    //    accelerator invocation over a batch of data-parallel
    //    elements (here: 3x3 pixel windows), passed as a BatchView
    //    over one contiguous buffer — the allocation-free hot path.
    const auto inputs = runtime.Bench().TestInputs();
    const std::vector<double> flat = core::FlattenBatch(inputs);
    constexpr size_t kElements = 2000;
    const core::BatchView batch(flat.data(), kElements,
                                runtime.Bench().NumInputs());
    std::vector<double> outputs(kElements *
                                runtime.Bench().NumOutputs());
    const core::InvocationReport report =
        runtime.ProcessInvocation(batch, outputs.data());

    // 4. Inspect what the quality manager did.
    std::printf("\nprocessed %zu elements\n", report.elements);
    std::printf("checks fired / re-executed on CPU: %zu (%.1f%%)\n",
                report.fixes,
                100.0 * static_cast<double>(report.fixes) /
                    static_cast<double>(report.elements));
    std::printf("residual output error: %.2f%% (target %.0f%%)\n",
                report.output_error_pct,
                config.tuner.target_error_pct);
    std::printf("modeled whole-app speedup:      %.2fx\n",
                report.costs.Speedup());
    std::printf("modeled whole-app energy saving: %.2fx\n",
                report.costs.EnergySaving());
    std::printf("next invocation's tuning threshold: %.4f\n",
                runtime.Threshold());
    return 0;
}
