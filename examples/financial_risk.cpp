/**
 * @file
 * Financial risk sweep: Black-Scholes portfolio pricing on the
 * approximate accelerator with a strict quality contract.
 *
 * A risk desk re-prices a 5000-option book many times a day; the
 * pricing kernel is approximable but the desk demands that the book's
 * value stays within a tight band of the exact number. This example
 * runs the book through Rumba in TOQ mode across several market
 * scenarios (invocations) and shows the tuner holding the contract
 * while the accelerator does the bulk of the work.
 */

#include <cstdio>
#include <vector>

#include "apps/blackscholes.h"
#include "core/batch_view.h"
#include "core/runtime.h"

using namespace rumba;

namespace {

double
BookValue(const std::vector<double>& prices)
{
    double total = 0.0;
    for (double p : prices)
        total += p;
    return total;
}

double
ExactBookValue(const apps::Benchmark& bench,
               const std::vector<std::vector<double>>& book)
{
    double total = 0.0;
    double price = 0.0;
    for (const auto& option : book) {
        bench.RunExact(option.data(), &price);
        total += price;
    }
    return total;
}

}  // namespace

int
main()
{
    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kTree)
            .WithTunerMode(core::TuningMode::kToq)
            .WithTargetErrorPct(5.0)  // strict: 95% quality.
            .Build();

    std::printf("training accelerator network and error predictor...\n");
    core::RumbaRuntime runtime(apps::MakeBenchmark("blackscholes"),
                               config);
    const auto& bench = runtime.Bench();

    // The option book: the benchmark's test inputs.
    const auto book = bench.TestInputs();

    std::printf("\n%-9s %-10s %-12s %-12s %-9s %-7s %s\n", "scenario",
                "threshold", "exact value", "rumba value", "diff %",
                "fixes", "resid err %");
    const size_t kScenarios = 6;
    const size_t batch = book.size() / kScenarios;
    for (size_t s = 0; s < kScenarios; ++s) {
        std::vector<std::vector<double>> scenario(
            book.begin() + static_cast<ptrdiff_t>(s * batch),
            book.begin() + static_cast<ptrdiff_t>((s + 1) * batch));
        const std::vector<double> flat = core::FlattenBatch(scenario);
        std::vector<double> prices(scenario.size() *
                                   runtime.Bench().NumOutputs());
        const auto report = runtime.ProcessInvocation(
            core::BatchView(flat.data(), scenario.size(),
                            runtime.Bench().NumInputs()),
            prices.data());

        const double exact = ExactBookValue(bench, scenario);
        const double approx = BookValue(prices);
        std::printf("%-9zu %-10.4f %-12.1f %-12.1f %-9.3f %-7zu %.2f\n",
                    s, report.threshold_used, exact, approx,
                    100.0 * std::fabs(approx - exact) / exact,
                    report.fixes, report.output_error_pct);
    }

    std::printf("\nbook-level value error stays well inside the "
                "per-option quality contract:\nlarge per-option errors "
                "are exactly what Rumba's checks catch and re-price "
                "exactly.\ntotal re-pricings: %zu of %zu options "
                "(%.1f%%)\n",
                runtime.TotalFixes(), kScenarios * batch,
                100.0 * static_cast<double>(runtime.TotalFixes()) /
                    static_cast<double>(kScenarios * batch));
    return 0;
}
