/**
 * @file
 * Signal-processing pipeline: a full radix-2 FFT whose twiddle
 * factors come from the approximate accelerator, with Rumba checking
 * every twiddle computation.
 *
 * Demonstrates embedding Rumba inside a larger exact algorithm: the
 * FFT's butterflies run exactly on the host while the transcendental
 * twiddle evaluations (the hot approximable kernel, as in the NPU
 * paper) go through the accelerator. Spectrum error is reported for
 * the unchecked and the Rumba-managed runs against a double-precision
 * FFT.
 */

#include <cmath>
#include <complex>
#include <cstdio>
#include <functional>
#include <unordered_map>
#include <vector>

#include "apps/fft.h"
#include "common/random.h"
#include "core/batch_view.h"
#include "core/runtime.h"

using namespace rumba;

namespace {

using Complex = std::complex<double>;

/** Iterative radix-2 FFT; twiddles supplied per (j, len) pair. */
void
Fft(std::vector<Complex>* data,
    const std::function<Complex(double)>& twiddle)
{
    const size_t n = data->size();
    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap((*data)[i], (*data)[j]);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        for (size_t start = 0; start < n; start += len) {
            for (size_t j = 0; j < len / 2; ++j) {
                const double frac = static_cast<double>(j) /
                                    static_cast<double>(len);
                const Complex w = twiddle(frac);
                const Complex u = (*data)[start + j];
                const Complex v = (*data)[start + j + len / 2] * w;
                (*data)[start + j] = u + v;
                (*data)[start + j + len / 2] = u - v;
            }
        }
    }
}

double
SpectrumError(const std::vector<Complex>& ref,
              const std::vector<Complex>& approx)
{
    double err = 0.0, mag = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        err += std::abs(ref[i] - approx[i]);
        mag += std::abs(ref[i]);
    }
    return 100.0 * err / mag;
}

}  // namespace

int
main()
{
    const size_t kN = 4096;

    // Input signal: a few tones plus noise.
    Rng rng(0xFF7);
    std::vector<Complex> signal(kN);
    for (size_t i = 0; i < kN; ++i) {
        const double t = static_cast<double>(i) / kN;
        signal[i] = {0.8 * std::sin(2 * M_PI * 50 * t) +
                         0.4 * std::sin(2 * M_PI * 320 * t) +
                         0.1 * rng.Gaussian(),
                     0.0};
    }

    // Exact reference.
    std::vector<Complex> exact = signal;
    Fft(&exact, [](double frac) {
        double out[2];
        apps::Fft::Kernel(&frac, out);
        return Complex{out[0], out[1]};
    });

    // Collect the distinct twiddle fractions the FFT will request
    // (each is requested once per butterfly block; index them).
    std::vector<std::vector<double>> fractions;
    std::unordered_map<double, size_t> fraction_index;
    for (size_t len = 2; len <= kN; len <<= 1) {
        for (size_t j = 0; j < len / 2; ++j) {
            const double frac = static_cast<double>(j) /
                                static_cast<double>(len);
            if (fraction_index.emplace(frac, fractions.size()).second)
                fractions.push_back({frac});
        }
    }

    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kTree)
            .WithTunerMode(core::TuningMode::kToq)
            .WithTargetErrorPct(10.0)
            .Build();
    std::printf("training accelerator network and error predictor...\n");
    core::RumbaRuntime runtime(apps::MakeBenchmark("fft"), config);

    // Approximate twiddles, unchecked and managed.
    const core::RuntimeConfig unchecked_cfg =
        core::RuntimeConfig::Builder(config)
            .WithInitialThreshold(1e6)
            .WithThresholdRange(1e6, 1e7)
            .Build();
    core::RumbaRuntime unchecked(apps::MakeBenchmark("fft"),
                                 unchecked_cfg);

    const std::vector<double> flat = core::FlattenBatch(fractions);
    const core::BatchView view(flat.data(), fractions.size(),
                               runtime.Bench().NumInputs());
    const size_t tw_w = runtime.Bench().NumOutputs();
    std::vector<double> tw_rumba(fractions.size() * tw_w);
    std::vector<double> tw_raw(tw_rumba.size());
    const auto report_rumba =
        runtime.ProcessInvocation(view, tw_rumba.data());
    const auto report_raw =
        unchecked.ProcessInvocation(view, tw_raw.data());

    auto run_with = [&](const std::vector<double>& tw) {
        std::vector<Complex> data = signal;
        Fft(&data, [&](double frac) {
            const size_t t = tw_w * fraction_index.at(frac);
            return Complex{tw[t], tw[t + 1]};
        });
        return data;
    };
    const auto spec_raw = run_with(tw_raw);
    const auto spec_rumba = run_with(tw_rumba);

    std::printf("\n%zu-point FFT, %zu twiddle evaluations\n", kN,
                fractions.size());
    std::printf("%-22s %-16s %-14s %s\n", "twiddle source",
                "spectrum err %", "kernel err %", "fixes");
    std::printf("%-22s %-16.3f %-14.2f %zu\n", "unchecked NPU",
                SpectrumError(exact, spec_raw),
                report_raw.output_error_pct, report_raw.fixes);
    std::printf("%-22s %-16.3f %-14.2f %zu (%.1f%%)\n",
                "rumba (TOQ 90%)", SpectrumError(exact, spec_rumba),
                report_rumba.output_error_pct, report_rumba.fixes,
                100.0 * static_cast<double>(report_rumba.fixes) /
                    static_cast<double>(fractions.size()));
    std::printf("\nThe butterflies amplify twiddle errors across the "
                "whole spectrum; catching the\nlarge twiddle errors at "
                "the source keeps the spectrum clean.\n");
    return 0;
}
