/**
 * @file
 * explore — a command-line driver over the evaluation harness, for
 * poking at the design space without writing code:
 *
 *   ./explore                             # defaults: all apps, 90% TOQ
 *   ./explore --app sobel --toq 95
 *   ./explore --app fft --scheme linearErrors --sweep
 *
 * Options:
 *   --app <name>      one of the seven Table 1 benchmarks (or 'all')
 *   --scheme <name>   Ideal|Random|Uniform|EMA|linearErrors|treeErrors|
 *                     hybridErrors (default treeErrors)
 *   --toq <percent>   target output quality, e.g. 95 (default 90)
 *   --sweep           print the full error-vs-fixes curve instead
 *   --epochs <n>      NN training epochs (default 120)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.h"
#include "core/experiment.h"

using namespace rumba;

namespace {

core::Scheme
ParseScheme(const std::string& name)
{
    for (core::Scheme s : core::ExtendedSchemes()) {
        if (name == core::SchemeName(s))
            return s;
    }
    std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
    std::exit(2);
}

void
RunOne(const std::string& app, core::Scheme scheme, double toq_pct,
       bool sweep, size_t epochs)
{
    core::ExperimentConfig cfg;
    cfg.pipeline.train_epochs = epochs;
    std::fprintf(stderr, "preparing %s ...\n", app.c_str());
    core::Experiment exp(apps::MakeBenchmark(app), cfg);

    if (sweep) {
        Table curve({"Fixed %", "Output error %", "Energy saving",
                     "Speedup"});
        for (int pct = 0; pct <= 100; pct += 10) {
            const auto fixes =
                exp.FixSetForFraction(scheme, pct / 100.0);
            const auto report = exp.Report(scheme, fixes);
            curve.AddRow({Table::Int(pct),
                          Table::Num(report.output_error_pct, 2),
                          Table::Num(report.costs.EnergySaving(), 2),
                          Table::Num(report.costs.Speedup(), 2)});
        }
        curve.Print(app + " / " + core::SchemeName(scheme) +
                    ": error vs elements fixed");
        return;
    }

    const double target_err = 100.0 - toq_pct;
    const auto npu = exp.NpuReport();
    const auto report = exp.ReportAtTargetError(scheme, target_err);
    Table summary({"Metric", "Unchecked NPU",
                   std::string("Rumba (") + core::SchemeName(scheme) +
                       ")"});
    summary.AddRow({"Output error %",
                    Table::Num(npu.output_error_pct, 2),
                    Table::Num(report.output_error_pct, 2)});
    summary.AddRow({"Elements fixed %", "0",
                    Table::Num(100.0 * report.fix_fraction, 2)});
    summary.AddRow({"False positives %", "-",
                    Table::Num(report.false_positive_pct, 2)});
    summary.AddRow({"Energy saving",
                    Table::Num(npu.costs.EnergySaving(), 2) + "x",
                    Table::Num(report.costs.EnergySaving(), 2) + "x"});
    summary.AddRow({"Speedup",
                    Table::Num(npu.costs.Speedup(), 2) + "x",
                    Table::Num(report.costs.Speedup(), 2) + "x"});
    summary.Print(app + " @ " + Table::Num(toq_pct, 0) +
                  "% target quality");
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string app = "all";
    std::string scheme_name = "treeErrors";
    double toq = 90.0;
    bool sweep = false;
    size_t epochs = 120;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--app") {
            app = next();
        } else if (arg == "--scheme") {
            scheme_name = next();
        } else if (arg == "--toq") {
            toq = std::atof(next());
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--epochs") {
            epochs = static_cast<size_t>(std::atol(next()));
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (toq <= 0.0 || toq >= 100.0) {
        std::fprintf(stderr, "--toq must be in (0, 100)\n");
        return 2;
    }

    const core::Scheme scheme = ParseScheme(scheme_name);
    if (app == "all") {
        for (const auto& name : apps::BenchmarkNames())
            RunOne(name, scheme, toq, sweep, epochs);
    } else {
        RunOne(app, scheme, toq, sweep, epochs);
    }
    return 0;
}
