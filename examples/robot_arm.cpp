/**
 * @file
 * Robot arm trajectory: inverse kinematics on the approximate
 * accelerator with Rumba guarding against large joint-angle errors.
 *
 * The two-joint arm traces a circular end-effector path. Each control
 * tick solves inverse kinematics for the next waypoint; an unchecked
 * approximate solver occasionally produces a badly-wrong joint
 * command (a visible twitch), which Rumba detects and recomputes. The
 * example reports the worst end-effector deviation with and without
 * quality management, verified through forward kinematics.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/inversek2j.h"
#include "common/statistics.h"
#include "core/batch_view.h"
#include "core/runtime.h"

using namespace rumba;

namespace {

/** End-effector deviations of solved angles (flat, 2 per waypoint)
 *  vs targets. */
std::vector<double>
Deviations(const std::vector<std::vector<double>>& targets,
           const std::vector<double>& angles)
{
    std::vector<double> devs(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
        double x = 0.0, y = 0.0;
        apps::InverseK2j::ForwardKinematics(angles[2 * i],
                                            angles[2 * i + 1], &x, &y);
        const double dx = x - targets[i][0];
        const double dy = y - targets[i][1];
        devs[i] = std::sqrt(dx * dx + dy * dy);
    }
    return devs;
}

}  // namespace

int
main()
{
    // Circular trajectory inside the arm's dexterous workspace.
    std::vector<std::vector<double>> waypoints;
    const size_t kTicks = 2000;
    for (size_t t = 0; t < kTicks; ++t) {
        const double phase =
            2.0 * M_PI * static_cast<double>(t) / kTicks;
        const double cx = 0.45, cy = 0.45, r = 0.18;
        waypoints.push_back(
            {cx + r * std::cos(phase), cy + r * std::sin(phase)});
    }

    // Rumba in quality mode: recompute as many flagged ticks as the
    // host can absorb without stalling the control loop.
    const core::RuntimeConfig config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kTree)
            .WithTunerMode(core::TuningMode::kQuality)
            .WithTargetErrorPct(5.0)  // strict starting calibration.
            .Build();
    std::printf("training accelerator network and error predictor...\n");
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"),
                               config);

    // Unchecked pass (threshold out of reach -> no checks fire).
    const core::RuntimeConfig unchecked_cfg =
        core::RuntimeConfig::Builder(config)
            .WithInitialThreshold(1e6)
            .WithThresholdRange(1e6, 1e7)
            .Build();
    core::RumbaRuntime unchecked(apps::MakeBenchmark("inversek2j"),
                                 unchecked_cfg);

    const std::vector<double> flat = core::FlattenBatch(waypoints);
    const core::BatchView view(flat.data(), waypoints.size(),
                               runtime.Bench().NumInputs());
    std::vector<double> angles_rumba(waypoints.size() *
                                     runtime.Bench().NumOutputs());
    std::vector<double> angles_raw(angles_rumba.size());
    const auto rumba_report =
        runtime.ProcessInvocation(view, angles_rumba.data());
    const auto raw_report =
        unchecked.ProcessInvocation(view, angles_raw.data());

    const auto devs_raw = Deviations(waypoints, angles_raw);
    const auto devs_rumba = Deviations(waypoints, angles_rumba);
    const double p95_raw = Percentile(devs_raw, 95.0);
    const double p95_rumba = Percentile(devs_rumba, 95.0);

    std::printf("\ntrajectory: %zu waypoints on a circle (r=0.18)\n",
                kTicks);
    std::printf("%-22s %-12s %-12s %-14s %s\n", "controller",
                "median dev", "p95 dev", "output err %",
                "energy saving");
    std::printf("%-22s %-12.4f %-12.4f %-14.2f %.2fx\n",
                "unchecked NPU", Percentile(devs_raw, 50.0), p95_raw,
                raw_report.output_error_pct,
                raw_report.costs.EnergySaving());
    std::printf("%-22s %-12.4f %-12.4f %-14.2f %.2fx\n",
                "rumba (quality mode)", Percentile(devs_rumba, 50.0),
                p95_rumba, rumba_report.output_error_pct,
                rumba_report.costs.EnergySaving());
    std::printf("\nfixes: %zu of %zu ticks (%.1f%%); the 95th-percentile "
                "tracking deviation shrank %.1fx.\n",
                rumba_report.fixes, kTicks,
                100.0 * static_cast<double>(rumba_report.fixes) /
                    static_cast<double>(kTicks),
                p95_raw / std::max(1e-9, p95_rumba));
    return 0;
}
