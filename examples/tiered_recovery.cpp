/**
 * @file
 * Cheaper recovery: the three-tier accept / compensate / re-execute
 * policy against the paper's two-tier baseline.
 *
 * Exact CPU re-execution of flagged iterations is the dominant cost
 * of online quality management (Figure 18). Since the error
 * predictors estimate the error itself, a mid-range predicted error
 * can be *compensated* in place — approximate output plus a predicted
 * signed residual — reserving exact re-execution for the worst tail.
 * This example trains one artifact (with the compensation model),
 * streams identical traffic through a two-tier and a tiered runtime,
 * and shows the split: same checker, same fired set, measurably less
 * recovery CPU, quality still at target.
 *
 * The second half serves the same artifact through the sharded
 * engine with ground-truth auditing on: compensated elements are
 * audit-eligible — the shadow exact re-execution measures the true
 * residual the compensator left behind — and that measured truth
 * tunes the compensate/re-execute boundary online, so compensation
 * can never silently violate the TOQ contract.
 *
 *   $ ./tiered_recovery
 */

#include <cstdio>
#include <vector>

#include "core/artifact.h"
#include "core/batch_view.h"
#include "core/runtime.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/engine.h"

using namespace rumba;

namespace {

/** Everything one runtime reported across the streamed rounds. */
struct Tally {
    size_t fixes = 0;
    size_t reexecuted = 0;
    size_t compensated = 0;
    size_t elements = 0;
    double err_weighted = 0.0;
    double recover_cpu_ms = 0.0;
    double compensate_cpu_ms = 0.0;

    double
    MeanErrPct() const
    {
        return elements == 0
                   ? 0.0
                   : err_weighted / static_cast<double>(elements);
    }
};

Tally
Stream(core::RumbaRuntime& runtime, const std::vector<double>& flat,
       size_t pool, size_t in_w, size_t rounds, size_t batch)
{
    Tally tally;
    std::vector<double> outputs(batch *
                                runtime.Bench().NumOutputs());
    for (size_t r = 0; r < rounds; ++r) {
        const size_t start = (r * batch) % (pool - batch);
        const core::BatchView view(flat.data() + start * in_w, batch,
                                   in_w);
        const core::InvocationReport report =
            runtime.ProcessInvocation(view, outputs.data());
        tally.fixes += report.fixes;
        tally.reexecuted += report.tier_reexecuted;
        tally.compensated += report.tier_compensated;
        tally.elements += report.elements;
        tally.err_weighted += report.output_error_pct *
                              static_cast<double>(report.elements);
        tally.recover_cpu_ms +=
            static_cast<double>(report.cpu.recover_cpu_ns) / 1e6;
        tally.compensate_cpu_ms +=
            static_cast<double>(report.cpu.compensate_cpu_ns) / 1e6;
    }
    return tally;
}

}  // namespace

int
main()
{
    // 1. Train once, compensation model included, and export. The
    //    artifact carries the networks, the checker, the calibrated
    //    threshold and the compensator — both runtimes below deploy
    //    from it, so they share every trained parameter.
    const core::RuntimeConfig tiered_config =
        core::RuntimeConfig::Builder()
            .WithChecker(core::Scheme::kTree)
            .WithTunerMode(core::TuningMode::kToq)
            .WithTargetErrorPct(10.0)
            .WithCompensation()
            .WithCpuAttribution()
            .Build();
    std::printf("training accelerator network, error predictor and "
                "compensation model...\n");
    core::RumbaRuntime trained(apps::MakeBenchmark("fft"),
                               tiered_config);
    const core::Artifact artifact = trained.ExportArtifact();

    const core::RuntimeConfig two_tier_config =
        core::RuntimeConfig::Builder(tiered_config)
            .WithCompensation(false)
            .Build();
    core::RumbaRuntime two_tier(artifact, two_tier_config);
    core::RumbaRuntime tiered(artifact, tiered_config);

    // 2. Identical traffic through both.
    const auto inputs = tiered.Bench().TestInputs();
    const std::vector<double> flat = core::FlattenBatch(inputs);
    const size_t in_w = tiered.Bench().NumInputs();
    const size_t kRounds = 12, kBatch = 500;
    const Tally base = Stream(two_tier, flat, inputs.size(), in_w,
                              kRounds, kBatch);
    const Tally tier = Stream(tiered, flat, inputs.size(), in_w,
                              kRounds, kBatch);

    std::printf("\n%zu rounds x %zu elements, TOQ target %.0f%%\n",
                kRounds, kBatch,
                tiered_config.tuner.target_error_pct);
    std::printf("%-22s %-8s %-12s %-12s %-14s %s\n", "recovery",
                "fired", "re-executed", "compensated", "recover CPU",
                "output err %");
    std::printf("%-22s %-8zu %-12zu %-12zu %-11.1f ms %.2f\n",
                "two-tier (paper)", base.fixes, base.reexecuted,
                base.compensated, base.recover_cpu_ms,
                base.MeanErrPct());
    std::printf("%-22s %-8zu %-12zu %-12zu %-11.1f ms %.2f\n",
                "tiered (compensate)", tier.fixes, tier.reexecuted,
                tier.compensated,
                tier.recover_cpu_ms + tier.compensate_cpu_ms,
                tier.MeanErrPct());
    std::printf("\nthe tuned compensate/re-execute boundary ended at "
                "%.2fx the check threshold\n(%zu ground-truth "
                "adjustments); exact re-executions dropped %.1f%%.\n",
                tiered.Policy().Multiple(),
                tiered.Policy().Adjustments(),
                base.reexecuted == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(base.reexecuted -
                                              tier.reexecuted) /
                          static_cast<double>(base.reexecuted));

    // The split is deterministic: same checker + threshold fires the
    // same set, the policy only divides it.
    bool ok = tier.compensated > 0 &&
              tier.reexecuted < base.reexecuted &&
              tier.fixes == tier.reexecuted + tier.compensated;
    // Quality must hold near target, not collapse: compensation is
    // bounded by the audited-residual budget.
    ok = ok && tier.MeanErrPct() <
                   2.0 * tiered_config.tuner.target_error_pct;
    // The recover-stage CPU win is the point (the compensate tier's
    // own cost lands in its own stage and is printed above) — but
    // wall/CPU ratios are only meaningful on an unsanitized build
    // (ci.sh runs this under ASan/TSan too, where instrumentation
    // swamps the comparison).
    if (obs::CollectRunMetadata().sanitizers.empty() &&
        base.recover_cpu_ms > 0.0) {
        ok = ok && tier.recover_cpu_ms < base.recover_cpu_ms;
    }
    if (!ok) {
        std::fprintf(stderr,
                     "tiered recovery did not beat the two-tier "
                     "baseline\n");
        return 1;
    }

    // 3. Serve the same artifact with ground-truth auditing: every
    //    invocation is shadow re-executed exactly, compensated
    //    elements report their true residual, and that measured
    //    truth feeds the policy's boundary tuning. One shard and
    //    synchronous submits keep the run deterministic.
    serve::ServeConfig serve_config;
    serve_config.shards = 1;
    serve_config.audit.sample_every = 1;
    serve_config.audit.queue_capacity = 256;
    serve_config.audit.result_capacity = 256;
    // The TOQ tuner deliberately rides AT the target, so
    // per-invocation means on small batches fluctuate a couple of
    // points above it even with every fix exact. The audited bound
    // exists to catch compensation *collapsing* (residuals way past
    // the budget), not that normal ripple — give it headroom above
    // the tuner's operating band.
    serve_config.slo.quality_margin_pct = 5.0;
    auto engine_or = serve::ShardedEngine::Create(
        artifact, tiered_config, serve_config);
    if (!engine_or.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     engine_or.status().ToString().c_str());
        return 1;
    }
    serve::ShardedEngine& engine = **engine_or;
    const size_t kServeBatches = 16, kServeBatch = 250;
    for (size_t r = 0; r < kServeBatches; ++r) {
        serve::InvocationRequest request;
        const size_t start =
            (r * kServeBatch) % (inputs.size() - kServeBatch);
        request.inputs.assign(
            flat.begin() + static_cast<ptrdiff_t>(start * in_w),
            flat.begin() +
                static_cast<ptrdiff_t>((start + kServeBatch) * in_w));
        request.count = kServeBatch;
        request.width = in_w;
        request.shard = 0;
        const auto result = engine.Submit(std::move(request)).get();
        if (!result.status.ok()) {
            std::fprintf(stderr, "serve: %s\n",
                         result.status.ToString().c_str());
            return 1;
        }
    }
    engine.Auditor()->Flush();
    const obs::AuditorStats audit = engine.Auditor()->Stats();
    const double multiple = engine.Runtime(0).Policy().Multiple();
    const double budget =
        engine.Runtime(0).Policy().ResidualBudgetPct();
    engine.Shutdown();

    std::printf("\nserved %zu batches with shadow exact auditing "
                "on:\n", kServeBatches);
    std::printf("  audited invocations:            %llu (%llu "
                "elements)\n",
                static_cast<unsigned long long>(audit.audited),
                static_cast<unsigned long long>(
                    audit.audited_elements));
    std::printf("  compensated elements audited:   %llu\n",
                static_cast<unsigned long long>(
                    audit.compensated_elements));
    std::printf("  measured mean residual:         %.2f%% (budget "
                "%.2f%%)\n",
                audit.mean_compensated_residual_pct, budget);
    std::printf("  audited-TOQ SLO:                %s (%llu "
                "violations, bound %.1f%%)\n",
                audit.slo_alerting ? "FIRING" : "clean",
                static_cast<unsigned long long>(audit.toq_violations),
                audit.toq_bound_pct);
    std::printf("  tuned boundary after serving:   %.2fx the check "
                "threshold\n", multiple);

    // The quality contract with compensation on: audited ground
    // truth sees no TOQ violations and the audited SLO stays quiet.
    if (audit.audited == 0 || audit.compensated_elements == 0 ||
        audit.slo_alerting || audit.toq_violations > 0) {
        std::fprintf(stderr, "audited quality contract violated "
                             "under compensation\n");
        return 1;
    }
    std::printf("\ncompensation paid for the boundary it rides on: "
                "measured residuals stayed\ninside the budget, so "
                "the cheap tier kept its share of the fix set.\n");
    return 0;
}
